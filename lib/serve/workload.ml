(* Deterministic request streams.  Everything here is a pure function
   of (mix, seed, requests): the generator is an xorshift64* PRNG over
   OCaml's 63-bit ints, the mix is a weighted table, and arrivals ride
   a virtual clock — no host time anywhere, so the same triple yields
   the same stream on every machine and every run. *)

type request = {
  id : int;
  program : string;
  iterations : int;
  arrival : int;
}

type mix = {
  mix_name : string;
  entries : (string * int * int) list;
  mean_gap : int;
}

(* Iteration counts are sized so a request is a few thousand modeled
   cycles: long enough that per-request dispatch is noise, short
   enough that a fleet of hundreds stays snappy in tests. *)
let standard_mix =
  {
    mix_name = "standard";
    entries =
      [
        ("crossing-hw", 40, 3);
        ("crossing-hw", 160, 1);
        ("crossing-645", 20, 2);
        ("same-ring", 40, 3);
        ("outward", 10, 1);
        ("argcross", 20, 1);
        ("paged", 10, 1);
      ];
    mean_gap = 64;
  }

let crossing_mix =
  {
    mix_name = "crossing";
    entries =
      [
        ("crossing-hw", 40, 2);
        ("crossing-645", 20, 1);
        ("outward", 10, 1);
      ];
    mean_gap = 64;
  }

let uniform_mix =
  {
    mix_name = "uniform";
    entries =
      [
        ("crossing-hw", 40, 1);
        ("crossing-645", 20, 1);
        ("same-ring", 40, 1);
        ("outward", 10, 1);
        ("argcross", 20, 1);
        ("paged", 10, 1);
      ];
    mean_gap = 64;
  }

let mixes =
  [
    ("standard", standard_mix);
    ("crossing", crossing_mix);
    ("uniform", uniform_mix);
  ]

let find_mix name =
  match List.assoc_opt name mixes with
  | Some m -> Ok m
  | None ->
      Error
        (Printf.sprintf "unknown mix %s (valid: %s)" name
           (String.concat ", " (List.map fst mixes)))

(* xorshift64* reduced to OCaml's native int: the state never goes to
   zero because the seed is mixed with a golden-ratio constant. *)
let mix_seed seed = (seed * 0x9e3779b9) lxor 0x2545f4914f6cdd1d lor 1

let next st =
  let x = !st in
  let x = x lxor (x lsl 13) in
  let x = x lxor (x lsr 7) in
  let x = x lxor (x lsl 17) in
  st := x;
  x land max_int

let generate ~mix ~seed ~requests =
  if mix.entries = [] then invalid_arg "Workload.generate: empty mix";
  let total_weight =
    List.fold_left
      (fun acc (_, _, w) ->
        if w <= 0 then invalid_arg "Workload.generate: nonpositive weight";
        acc + w)
      0 mix.entries
  in
  if mix.mean_gap < 1 then invalid_arg "Workload.generate: mean_gap < 1";
  let st = ref (mix_seed seed) in
  let pick () =
    let r = next st mod total_weight in
    let rec go r = function
      | [] -> assert false
      | (program, iterations, w) :: rest ->
          if r < w then (program, iterations) else go (r - w) rest
    in
    go r mix.entries
  in
  let clock = ref 0 in
  List.init requests (fun id ->
      let program, iterations = pick () in
      clock := !clock + 1 + (next st mod (2 * mix.mean_gap));
      { id; program; iterations; arrival = !clock })

let classes reqs =
  List.sort_uniq compare
    (List.map (fun r -> (r.program, r.iterations)) reqs)

let pp_request ppf r =
  Format.fprintf ppf "#%d %s/%d @%d" r.id r.program r.iterations r.arrival
