(** Cross-shard metrics aggregation: one deterministic fleet report.

    Every merge here is commutative and associative —
    {!Trace.Counters.add} for counter deltas, {!Trace.Histogram.merge}
    for latency distributions, pointwise sums for ring attribution —
    so the fleet totals do not depend on shard order, and the
    [fleet] section of the report does not depend on the shard count
    at all when nothing was shed: each request's outcome is the same
    whichever shard served it, and the sums are over requests, not
    shards.  That is what [make serve-smoke] byte-diffs. *)

type shard_summary = {
  shard_id : int;
  served : int;
  shard_ok : int;
  cold_boots : int;
  warm_boots : int;
  busy_cycles : int;
  image_stats : Hw.Assoc.stats;
  shard_quarantined : bool;
  shard_latency : Trace.Histogram.t;
}

type fleet_trace = {
  tr_requests : int;  (** Requests that carried a trace. *)
  tr_events : int;  (** Retained events, summed over requests. *)
  tr_spans : int;  (** Retained completed spans. *)
  tr_seen : int;  (** Events offered to the samplers. *)
  tr_dropped : int;  (** Events overwritten in the ring buffers. *)
  tr_sampled_out : int;  (** Events deselected by the samplers. *)
  tr_spans_sampled_out : int;
}
(** Fleet-wide trace accounting: sums over request traces, so — like
    every other fleet field — independent of placement. *)

type fleet = {
  completed : int;
  ok : int;
  exits : (string * int) list;  (** [(label, count)], sorted by label. *)
  per_class : ((string * int) * int) list;
      (** Served requests per service class, sorted by class. *)
  latency : Trace.Histogram.t;
      (** Per-request modeled-cycle latencies, fleet-wide. *)
  counters : Trace.Counters.snapshot option;
      (** Sum of every request's counter delta; [None] when no
          request completed. *)
  rings : (int * int * int) list;
      (** Fleet [(ring, cycles, instructions)] attribution. *)
  kernel_cycles : int;
  trace : fleet_trace option;
      (** [None] when the fleet ran untraced (or nothing completed). *)
}

type t = {
  fleet : fleet;
  shards : shard_summary array;
  dispatch : Dispatcher.stats;
}

val build :
  Dispatcher.shard_model array -> Shard.outcome list -> Dispatcher.stats -> t
(** The per-shard summaries come from the dispatcher's {e modeled}
    fleet, not the pool workers that happened to execute the requests
    on the host — that is what keeps the report byte-identical across
    pool sizes and steal settings. *)

val chrome_trace : Shard.outcome list -> string
(** The merged fleet Chrome trace: one Chrome "process" per traced
    request (pid = request id, in request-id order — pass
    {!Dispatcher.result.outcomes}, which is already sorted), rings as
    threads inside each.  Untraced outcomes are skipped.  Because a
    request's trace is placement-independent, the document is
    byte-identical across shard counts, pool sizes and steal
    settings. *)

val requests_per_modeled_sec : t -> float
(** [completed * 1e6 / makespan] — one modeled cycle is one
    microsecond, the chrome-trace convention.  0 when nothing ran. *)

val report_json : ?config:(string * string) list -> t -> string
(** The fleet report.  [config] entries ([(key, rendered_json)]) are
    embedded verbatim in a leading [config] section — the one section
    expected to vary with shard count and flags.  The [fleet] section
    is a function of the outcome set alone; [dispatch] and [shards]
    describe placement and the workers.  Byte-deterministic. *)

val pp : Format.formatter -> t -> unit
(** Human-readable fleet summary. *)
