(* The persistent worker pool.  Concurrency layout:

   - Each deque's contents live behind that deque's own mutex (the
     stripes): pushes and pops on different deques never contend on
     the data.
   - The coordination state — per-deque item counts, the
     submitted/completed totals, parking and drain — lives behind one
     [coord] mutex with two condition variables.  Every transition a
     parked worker could be waiting on happens under [coord], so there
     is no lost-wakeup window.  These critical sections are a few
     machine words; executing a request costs milliseconds, so the
     shared lock is never the bottleneck.

   Reservation protocol: a worker picks a deque by decrementing its
   [avail] count under [coord], then pops the item under the deque's
   own mutex.  Items are pushed before [avail] is raised and only
   popped by reservation holders, so a reserved deque always has an
   item for its reserver. *)

type 'a deque = {
  dmu : Mutex.t;
  (* Two stacks: [front] holds the head end, [back] the tail end.
     Either side reverses the other when it runs dry — the classic
     amortized-O(1) functional deque. *)
  mutable front : 'a list;
  mutable back : 'a list;
}

let deque_push_back d x =
  Mutex.lock d.dmu;
  d.back <- x :: d.back;
  Mutex.unlock d.dmu

let deque_pop_front d =
  Mutex.lock d.dmu;
  let x =
    match d.front with
    | x :: rest ->
        d.front <- rest;
        x
    | [] -> (
        match List.rev d.back with
        | x :: rest ->
            d.front <- rest;
            d.back <- [];
            x
        | [] -> assert false (* reservation guarantees an item *))
  in
  Mutex.unlock d.dmu;
  x

let deque_pop_back d =
  Mutex.lock d.dmu;
  let x =
    match d.back with
    | x :: rest ->
        d.back <- rest;
        x
    | [] -> (
        match List.rev d.front with
        | x :: rest ->
            d.back <- rest;
            d.front <- [];
            x
        | [] -> assert false)
  in
  Mutex.unlock d.dmu;
  x

type ('a, 'b) t = {
  workers : int;
  steal : bool;
  exec : int -> 'a -> 'b;
  deques : 'a deque array;
  coord : Mutex.t;
  work_cv : Condition.t;  (* new work, or shutdown *)
  done_cv : Condition.t;  (* completed caught up with submitted *)
  avail : int array;  (* per-deque queued count; under [coord] *)
  mutable submitted : int;
  mutable completed : int;
  mutable stopping : bool;
  mutable live : int;
  mutable failure : exn option;
  results : 'b list ref array;  (* worker-local until the join *)
  executed : int array;
  steals : int array;
  mutable domains : unit Domain.t array;
  mutable drained : 'b list option;
}

(* Find a deque with queued work: own first, then — when stealing —
   siblings in ring order.  Called under [coord]. *)
let pick t wid =
  if t.avail.(wid) > 0 then Some wid
  else if not t.steal then None
  else
    let rec scan k =
      if k = t.workers then None
      else
        let v = (wid + k) mod t.workers in
        if t.avail.(v) > 0 then Some v else scan (k + 1)
    in
    scan 1

(* Take the next item for worker [wid], parking when the pool is idle.
   [None] means the pool is stopping and no grabbable work remains. *)
let take t wid =
  Mutex.lock t.coord;
  let rec wait_for_work () =
    match pick t wid with
    | Some v ->
        t.avail.(v) <- t.avail.(v) - 1;
        Mutex.unlock t.coord;
        let item =
          if v = wid then deque_pop_front t.deques.(v)
          else begin
            t.steals.(wid) <- t.steals.(wid) + 1;
            deque_pop_back t.deques.(v)
          end
        in
        Some item
    | None ->
        if t.stopping then begin
          Mutex.unlock t.coord;
          None
        end
        else begin
          Condition.wait t.work_cv t.coord;
          wait_for_work ()
        end
  in
  wait_for_work ()

let worker_loop t wid () =
  let record ?failed out =
    (match out with
    | Some o -> t.results.(wid) := o :: !(t.results.(wid))
    | None -> ());
    t.executed.(wid) <- t.executed.(wid) + 1;
    Mutex.lock t.coord;
    (match failed with
    | Some e when t.failure = None -> t.failure <- Some e
    | _ -> ());
    t.completed <- t.completed + 1;
    if t.completed = t.submitted then Condition.broadcast t.done_cv;
    Mutex.unlock t.coord
  in
  let rec loop () =
    match take t wid with
    | None -> ()
    | Some item ->
        (match t.exec wid item with
        | out -> record (Some out)
        | exception e -> record ~failed:e None);
        loop ()
  in
  loop ();
  Mutex.lock t.coord;
  t.live <- t.live - 1;
  Mutex.unlock t.coord

let create ~workers ~steal ~exec () =
  if workers < 1 then invalid_arg "Pool.create: workers < 1";
  let t =
    {
      workers;
      steal;
      exec;
      deques =
        Array.init workers (fun _ ->
            { dmu = Mutex.create (); front = []; back = [] });
      coord = Mutex.create ();
      work_cv = Condition.create ();
      done_cv = Condition.create ();
      avail = Array.make workers 0;
      submitted = 0;
      completed = 0;
      stopping = false;
      live = workers;
      failure = None;
      results = Array.init workers (fun _ -> ref []);
      executed = Array.make workers 0;
      steals = Array.make workers 0;
      domains = [||];
      drained = None;
    }
  in
  t.domains <- Array.init workers (fun wid -> Domain.spawn (worker_loop t wid));
  t

let submit t ~worker item =
  if worker < 0 || worker >= t.workers then
    invalid_arg "Pool.submit: worker out of range";
  (* Push before raising [avail]: a reserver must always find its
     item.  The deque mutex nests inside [coord]; nothing locks the
     other way around. *)
  Mutex.lock t.coord;
  if t.stopping then begin
    Mutex.unlock t.coord;
    invalid_arg "Pool.submit: pool is draining"
  end;
  deque_push_back t.deques.(worker) item;
  t.avail.(worker) <- t.avail.(worker) + 1;
  t.submitted <- t.submitted + 1;
  Condition.broadcast t.work_cv;
  Mutex.unlock t.coord

let drain t =
  match t.drained with
  | Some r -> r
  | None ->
      Mutex.lock t.coord;
      t.stopping <- true;
      (* Wake every parked worker: with no work left they exit; with
         work left they keep serving until the deques run dry. *)
      Condition.broadcast t.work_cv;
      while t.completed < t.submitted do
        Condition.wait t.done_cv t.coord
      done;
      Mutex.unlock t.coord;
      Array.iter Domain.join t.domains;
      (match t.failure with Some e -> raise e | None -> ());
      let r =
        Array.fold_left (fun acc l -> List.rev_append !l acc) [] t.results
      in
      t.drained <- Some r;
      r

let live_workers t =
  Mutex.lock t.coord;
  let n = t.live in
  Mutex.unlock t.coord;
  n

let executed t = Array.copy t.executed
let steals t = Array.copy t.steals
