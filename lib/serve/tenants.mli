(** Seeded tenant-program generation for the multi-tenant arena, and
    the domain-parallel campaign runner.

    A population is a pure function of [(profile, seed, tenants)]:
    the same stream on any host, the first link in the arena's
    byte-identical-report contract.  The [standard] profile is mostly
    honest compute and ring-crossing programs with a steady trickle of
    adversaries — gate squeezers (linked past the gate list),
    argument-chain ring maximizers, stack-bracket forgers (absolute
    ITS into an inner ring's stack), self-modifying cache probes,
    quota spinners and admission-time memory hogs — plus two honest
    stressors: [io-heavy] (ring-0 channel traffic keeping a transfer
    in flight) and [paging-heavy] (demand-paged sweeps of a
    three-page data segment).  The [cooperative] profile draws honest
    kinds only — the bench's degradation baseline. *)

val profiles : string list
(** [["standard"; "cooperative"]]. *)

val kinds_of_profile : string -> ((string * int) list, string) result
(** The [(kind, weight)] table a profile draws from; the error names
    the valid profiles. *)

val generate :
  ?profile:string ->
  seed:int ->
  tenants:int ->
  unit ->
  Os.Arena.tenant list
(** Deterministic population with ids [0 .. tenants-1].  A [standard]
    draw that happens to contain no quota spinner has its last tenant
    drafted as one, so every standard campaign exercises the
    quarantine path.  Raises [Invalid_argument] on an unknown profile
    or a nonpositive count. *)

val run_sharded :
  ?mode:Isa.Machine.mode ->
  ?quantum:int ->
  ?inject:Hw.Inject.plan ->
  ?quota:Os.Arena.quota ->
  shards:int ->
  seed:int ->
  Os.Arena.tenant list ->
  Os.Arena.report
(** Run the campaign's waves round-robin across [shards] domains
    ([shards = 1] stays on the calling domain) and assemble.  Waves
    are self-contained, so the report is byte-identical to the
    sequential run regardless of [shards].  [mode] selects each
    wave's protection backend ({!Os.Arena.run_wave}). *)
