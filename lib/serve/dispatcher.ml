(* Routing and fleet execution.

   Since PR 6 the two are fully decoupled.  Routing — windows,
   consistent hashing, the least-loaded override, shedding, quarantine
   and redistribution — is a *pure simulation* over modeled state
   (class hashes, per-window queue depths, per-request outcome facts),
   so the (request, shard, outcome) relation is a function of
   (workload, config) alone.  Execution happens on a persistent
   {!Pool} of worker domains with per-deque work stealing and no
   per-window barrier; it is free to run requests in any host order
   because a request's outcome is placement-independent (every boot
   rewinds the machine to the sealed class image).  The report is then
   rebuilt from the simulation plus the per-request outcome table, so
   host scheduling and steal order cannot leak into it. *)

module Route = struct
  type ring = { points : (int64 * int) array }

  (* FNV-1a 64 with a murmur3 avalanche finalizer.  Raw FNV of short
     keys like "shard:3:0" barely diffuses — every replica of a shard
     lands in one tight cluster and the ring degenerates — so the
     finalizer spreads each point over the full 64-bit space.  Int64
     because OCaml's native int is 63-bit; unsigned compares keep the
     ring ordered. *)
  let hash64 s =
    let h = ref 0xcbf29ce484222325L in
    String.iter
      (fun c ->
        h :=
          Int64.mul
            (Int64.logxor !h (Int64.of_int (Char.code c)))
            0x100000001b3L)
      s;
    let mix h =
      let h = Int64.logxor h (Int64.shift_right_logical h 33) in
      let h = Int64.mul h 0xff51afd7ed558ccdL in
      let h = Int64.logxor h (Int64.shift_right_logical h 33) in
      let h = Int64.mul h 0xc4ceb9fe1a85ec53L in
      Int64.logxor h (Int64.shift_right_logical h 33)
    in
    mix !h

  let make ~shards ~replicas =
    if shards < 1 then invalid_arg "Route.make: shards < 1";
    if replicas < 1 then invalid_arg "Route.make: replicas < 1";
    let points =
      Array.init (shards * replicas) (fun i ->
          let s = i / replicas and r = i mod replicas in
          (hash64 (Printf.sprintf "shard:%d:%d" s r), s))
    in
    Array.sort
      (fun (a, sa) (b, sb) ->
        match Int64.unsigned_compare a b with 0 -> compare sa sb | c -> c)
      points;
    { points }

  let klass_key (p, n) = Printf.sprintf "%s/%d" p n

  (* Index of the first point at or after [h], wrapping past the top
     of the ring to point 0. *)
  let successor ring h =
    let n = Array.length ring.points in
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      let ph, _ = ring.points.(mid) in
      if Int64.unsigned_compare ph h < 0 then lo := mid + 1 else hi := mid
    done;
    if !lo = n then 0 else !lo

  let owner ring k = snd ring.points.(successor ring (hash64 (klass_key k)))

  let owner_alive ring ~alive k =
    let n = Array.length ring.points in
    let start = successor ring (hash64 (klass_key k)) in
    let rec go i =
      if i = n then None
      else
        let _, s = ring.points.((start + i) mod n) in
        if alive s then Some s else go (i + 1)
    in
    go 0
end

type config = {
  shards : int;
  queue_cap : int;
  imbalance : int;
  replicas : int;
  batch_window : int;
  image_cap : int;
  backend : Isa.Machine.mode option;
  watchdog : int option;
  inject : Hw.Inject.plan option;
  preload : (Shard.klass * string) list;
  pool : int option;
  steal : bool;
  trace : Shard.trace_cfg option;
  migrate : (int * int * int) option;
  restart_every : int option;
  autoscale : bool;
}

let default_config ~shards =
  {
    shards;
    queue_cap = 64;
    imbalance = 4;
    replicas = 16;
    batch_window = 4096;
    image_cap = 8;
    backend = None;
    watchdog = None;
    inject = None;
    preload = [];
    pool = None;
    steal = true;
    trace = None;
    migrate = None;
    restart_every = None;
    autoscale = false;
  }

type stats = {
  completed : int;
  ok : int;
  shed : int;
  redistributed : int;
  routed_hash : int;
  routed_balanced : int;
  batches : int;
  makespan : int;
  quarantined : int;
  migrated : int;
  restarts : int;
  peak_active : int;
}

type shard_model = {
  ms_id : int;
  ms_served : int;
  ms_cold : int;
  ms_warm : int;
  ms_busy : int;
  ms_image : Hw.Assoc.stats;
  ms_quarantined : bool;
}

type host_stats = {
  hs_workers : int;
  hs_steal : bool;
  hs_executed : int array;
  hs_stolen : int array;
}

type result = {
  models : shard_model array;
  outcomes : Shard.outcome list;
  stats : stats;
  workers : Shard.t array;
  host : host_stats;
}

let by_id (a : Shard.outcome) (b : Shard.outcome) =
  compare a.Shard.request.Workload.id b.Shard.request.Workload.id

let req_id (r : Workload.request) = r.Workload.id

(* ------------------------------------------------------------------ *)
(* The routing simulation *)

(* All a routing decision may read of an outcome: how long the request
   ran (for busy cycles and makespan) and whether it tripped
   quarantine.  Both are per-request deterministic — a boot rewinds
   the machine to the sealed image, so the shard that runs a request
   cannot change these. *)
type fact = { f_latency : int; f_tripped : bool }

type sim = {
  sim_assign : (int, int) Hashtbl.t;  (* request id -> serving shard *)
  sim_order : (int * Workload.request) list array;
      (* per shard, service order, each request tagged with the window
         ordinal it was served in (so the model can place restarts) *)
  sim_quarantined : bool array;
  sim_restart_windows : int list array;
      (* per shard, ascending window ordinals at which it restarted *)
  sim_shed : int;
  sim_redistributed : int;
  sim_migrated : int;
  sim_restarts : int;
  sim_peak_active : int;
  sim_routed_hash : int;
  sim_routed_balanced : int;
  sim_batches : int;
  sim_makespan : int;
}

(* One pass of the modeled dispatch loop.  This is the old per-window
   dispatcher verbatim minus the domains: requests are grouped into
   arrival windows, routed by consistent hash with the least-loaded
   override, shed when every live queue is full; each shard serves its
   window queue in order until a request trips, the remainder is
   re-queued for the next window, and the window costs the slowest
   shard's busy cycles.  [fact] supplies the two outcome-borne inputs;
   everything else is modeled state. *)
let simulate cfg ring ~fact reqs =
  let quarantined = Array.make cfg.shards false in
  (* Elastic-fleet state.  A migrated-away shard left the rotation for
     good at its drain window; a restarting shard sits out exactly one
     window; autoscale caps routing to the first [active] shard ids.
     All of it is modeled state — facts never feed these, so sim0
     already places with them and convergence is untouched. *)
  let migrated_away = Array.make cfg.shards false in
  let restarting = Array.make cfg.shards false in
  let restart_windows = Array.make cfg.shards [] in
  let active = ref (if cfg.autoscale then 1 else cfg.shards) in
  let peak_active = ref !active in
  let assign = Hashtbl.create 256 in
  let order = Array.make cfg.shards [] in
  let shed = ref 0
  and redistributed = ref 0
  and migrated = ref 0
  and restarts = ref 0
  and routed_hash = ref 0
  and routed_balanced = ref 0
  and batches = ref 0
  and makespan = ref 0 in
  (* Requests still to arrive, ascending by arrival (the generator
     emits them that way); requests bounced off a quarantined shard
     waiting for the next window. *)
  let pending = ref reqs and carry = ref [] in
  let split_window w =
    let rec go acc = function
      | (r : Workload.request) :: rest
        when r.Workload.arrival / cfg.batch_window = w ->
          go (r :: acc) rest
      | rest -> (List.rev acc, rest)
    in
    go [] !pending
  in
  while !pending <> [] || !carry <> [] do
    let arrived, rest =
      match !pending with
      | [] -> ([], [])
      | r :: _ -> split_window (r.Workload.arrival / cfg.batch_window)
    in
    pending := rest;
    let batch = !carry @ arrived in
    carry := [];
    let win = !batches in
    incr batches;
    (* Rolling restart: every [n] windows the next shard in id order
       goes down for one window — rebooted, boot-image cache cold —
       and the ring routes around it.  Nothing queues on a restarting
       shard, so a restart can never drop a request. *)
    Array.fill restarting 0 cfg.shards false;
    (match cfg.restart_every with
    | Some n when win > 0 && win mod n = 0 ->
        let s = ((win / n) - 1) mod cfg.shards in
        restarting.(s) <- true;
        incr restarts;
        restart_windows.(s) <- win :: restart_windows.(s)
    | _ -> ());
    (* Route the window.  Queue depths only count this window's
       requests: the previous window fully drained before this one was
       routed. *)
    (* Autoscale, growth half: size the active set to this window's
       offered load before routing it, so a burst is absorbed rather
       than shed.  Growth is capped at [shards]. *)
    if cfg.autoscale then begin
      let offered = List.length batch in
      while
        !active < cfg.shards && offered * 4 > 3 * !active * cfg.queue_cap
      do
        incr active
      done;
      if !active > !peak_active then peak_active := !active
    end;
    let queues = Array.make cfg.shards [] in
    let qlen = Array.make cfg.shards 0 in
    let alive s =
      (not quarantined.(s))
      && (not migrated_away.(s))
      && (not restarting.(s))
      && s < !active
    in
    let shed_before = !shed in
    (* A class homed on the migrated-away shard aims at the migration
       target (falling back to the plain ring walk when the target is
       itself unroutable); every other class walks the ring over live
       shards as always. *)
    let pref_of k =
      match cfg.migrate with
      | Some (_, s_from, s_to) when migrated_away.(s_from) -> (
          match
            Route.owner_alive ring ~alive:(fun s -> alive s || s = s_from) k
          with
          | Some s when s = s_from ->
              if alive s_to then Some s_to else Route.owner_alive ring ~alive k
          | Some s -> Some s
          | None -> None)
      | _ -> Route.owner_alive ring ~alive k
    in
    List.iter
      (fun (r : Workload.request) ->
        match pref_of (r.Workload.program, r.Workload.iterations) with
        | None -> incr shed
        | Some pref ->
            (* Least-loaded live shard, lowest id on ties.  [pref] is
               alive, so the scan always finds something. *)
            let best = ref pref in
            for s = 0 to cfg.shards - 1 do
              if alive s && qlen.(s) < qlen.(!best) then best := s
            done;
            let target =
              if
                qlen.(pref) < cfg.queue_cap
                && qlen.(pref) - qlen.(!best) <= cfg.imbalance
              then (
                incr routed_hash;
                pref)
              else if qlen.(!best) < cfg.queue_cap then (
                if !best = pref then incr routed_hash
                else incr routed_balanced;
                !best)
              else -1
            in
            if target < 0 then incr shed
            else (
              qlen.(target) <- qlen.(target) + 1;
              queues.(target) <- r :: queues.(target)))
      batch;
    (* Live migration: at its drain window the source shard's routed
       queue rides the carry to the next window in arrival order —
       exactly the quarantine redistribution path — and the shard
       leaves the rotation.  From the next window on, its classes aim
       at the migration target (see [pref_of]). *)
    (match cfg.migrate with
    | Some (w0, s_from, _) when win >= w0 && not migrated_away.(s_from) ->
        migrated := !migrated + qlen.(s_from);
        carry := !carry @ List.rev queues.(s_from);
        queues.(s_from) <- [];
        qlen.(s_from) <- 0;
        migrated_away.(s_from) <- true
    | _ -> ());
    (* Serve the window: each shard works through its queue in order
       and stops at the first request that trips quarantine; the
       unserved remainder rides to the next window.  The window's
       modeled cost is the slowest shard's busy cycles. *)
    let window_max = ref 0 in
    for s = 0 to cfg.shards - 1 do
      match queues.(s) with
      | [] -> ()
      | q ->
          let rec serve busy served = function
            | [] -> (busy, served, [])
            | (r : Workload.request) :: rest ->
                let f = fact r in
                let busy = busy + f.f_latency in
                let served = r :: served in
                if f.f_tripped then (busy, served, rest)
                else serve busy served rest
          in
          let busy, served_rev, remainder = serve 0 [] (List.rev q) in
          if busy > !window_max then window_max := busy;
          List.iter
            (fun (r : Workload.request) ->
              Hashtbl.replace assign r.Workload.id s)
            served_rev;
          (* [served_rev] is this window's served list most-recent
             first; keep [order] most-recent first globally and flip
             once at the end. *)
          order.(s) <-
            List.map (fun r -> (win, r)) served_rev @ order.(s);
          if List.exists (fun r -> (fact r).f_tripped) served_rev then
            quarantined.(s) <- true;
          redistributed := !redistributed + List.length remainder;
          carry := !carry @ remainder
    done;
    carry := List.sort (fun a b -> compare (req_id a) (req_id b)) !carry;
    makespan := !makespan + !window_max;
    (* Autoscale, shrink half (plus a corrective grow if the window
       shed despite the sizing — capacity was genuinely short): reads
       modeled routing state only, so placement stays a function of
       (workload, config). *)
    if cfg.autoscale then begin
      let routed = Array.fold_left ( + ) 0 qlen in
      if !shed > shed_before && !active < cfg.shards then begin
        incr active;
        if !active > !peak_active then peak_active := !active
      end
      else if !active > 1 && routed * 4 < (!active - 1) * cfg.queue_cap then
        decr active
    end
  done;
  {
    sim_assign = assign;
    sim_order = Array.map List.rev order;
    sim_quarantined = quarantined;
    sim_restart_windows = Array.map List.rev restart_windows;
    sim_shed = !shed;
    sim_redistributed = !redistributed;
    sim_migrated = !migrated;
    sim_restarts = !restarts;
    sim_peak_active = !peak_active;
    sim_routed_hash = !routed_hash;
    sim_routed_balanced = !routed_balanced;
    sim_batches = !batches;
    sim_makespan = !makespan;
  }

(* The per-shard summaries the report carries, replayed from the
   simulation.  Boot classification rides an [Hw.Assoc] with the same
   capacity the shard LRU has and the same find-then-insert protocol
   {!Shard.boot} uses, so hits/misses/evictions come out exactly as a
   dedicated per-shard machine would have counted them — whatever pool
   worker actually booted the class on the host. *)
let model_of_sim cfg sim ~fact =
  Array.init cfg.shards (fun s ->
      let cache = Hw.Assoc.create ~capacity:cfg.image_cap () in
      let cold = ref 0 and warm = ref 0 and busy = ref 0 in
      let pending_restarts = ref sim.sim_restart_windows.(s) in
      List.iter
        (fun ((w, r) : int * Workload.request) ->
          (* A rolling restart between the previous request and this
             one rebooted the shard: its boot-image cache comes back
             empty, so the next request of every class boots cold. *)
          let rec flush () =
            match !pending_restarts with
            | rw :: rest when rw <= w ->
                Hw.Assoc.clear cache;
                pending_restarts := rest;
                flush ()
            | _ -> ()
          in
          flush ();
          let k = (r.Workload.program, r.Workload.iterations) in
          (match Hw.Assoc.find cache k with
          | Some () -> incr warm
          | None ->
              incr cold;
              ignore (Hw.Assoc.insert cache k ()));
          busy := !busy + (fact r).f_latency)
        sim.sim_order.(s);
      {
        ms_id = s;
        ms_served = List.length sim.sim_order.(s);
        ms_cold = !cold;
        ms_warm = !warm;
        ms_busy = !busy;
        ms_image = Hw.Assoc.stats cache;
        ms_quarantined = sim.sim_quarantined.(s);
      })

(* ------------------------------------------------------------------ *)
(* Execution *)

let run cfg reqs =
  if cfg.shards < 1 then invalid_arg "Dispatcher.run: shards < 1";
  if cfg.queue_cap < 1 then invalid_arg "Dispatcher.run: queue_cap < 1";
  if cfg.batch_window < 1 then invalid_arg "Dispatcher.run: batch_window < 1";
  if cfg.image_cap < 0 then invalid_arg "Dispatcher.run: image_cap < 0";
  if cfg.imbalance < 0 then invalid_arg "Dispatcher.run: imbalance < 0";
  if cfg.replicas < 1 then invalid_arg "Dispatcher.run: replicas < 1";
  (match cfg.pool with
  | Some p when p < 1 -> invalid_arg "Dispatcher.run: pool < 1"
  | _ -> ());
  (match cfg.trace with
  | Some t when t.Shard.sample < 1 ->
      invalid_arg "Dispatcher.run: trace sample < 1"
  | Some t when t.Shard.capacity < 1 ->
      invalid_arg "Dispatcher.run: trace capacity < 1"
  | Some t when t.Shard.instr < 0 ->
      invalid_arg "Dispatcher.run: trace instr < 0"
  | _ -> ());
  (match cfg.migrate with
  | Some (w, s_from, s_to) ->
      if w < 0 then invalid_arg "Dispatcher.run: migrate window < 0";
      if s_from < 0 || s_from >= cfg.shards then
        invalid_arg "Dispatcher.run: migrate source out of range";
      if s_to < 0 || s_to >= cfg.shards then
        invalid_arg "Dispatcher.run: migrate target out of range";
      if s_from = s_to then
        invalid_arg "Dispatcher.run: migrate source equals target"
  | None -> ());
  (match cfg.restart_every with
  | Some n when n < 1 -> invalid_arg "Dispatcher.run: restart_every < 1"
  | _ -> ());
  let nworkers =
    match cfg.pool with
    | Some p -> p
    | None -> max 1 (min cfg.shards (Domain.recommended_domain_count ()))
  in
  let ring = Route.make ~shards:cfg.shards ~replicas:cfg.replicas in
  let workers =
    Array.init nworkers (fun i ->
        Shard.create ~id:i ~image_cap:cfg.image_cap ?backend:cfg.backend
          ?inject:cfg.inject ?watchdog:cfg.watchdog ?trace:cfg.trace
          ~preload:cfg.preload ())
  in
  (* Outcome facts discovered so far.  A request not yet executed is
     assumed not to trip — the optimistic placement; a wrong guess is
     repaired by re-simulating below. *)
  let table : (int, Shard.outcome) Hashtbl.t = Hashtbl.create 256 in
  let fact (r : Workload.request) =
    match Hashtbl.find_opt table r.Workload.id with
    | Some o -> { f_latency = o.Shard.latency; f_tripped = o.Shard.tripped }
    | None -> { f_latency = 0; f_tripped = false }
  in
  let missing sim =
    List.filter
      (fun (r : Workload.request) ->
        Hashtbl.mem sim.sim_assign r.Workload.id
        && not (Hashtbl.mem table r.Workload.id))
      reqs
  in
  let hs_executed = Array.make nworkers 0 in
  let hs_stolen = Array.make nworkers 0 in
  (* Bulk round: place optimistically for image-cache affinity (a
     class's home shard maps to a stable worker deque) and execute the
     whole campaign on the pool — no window barriers, stealing evens
     out hot shards, idle workers park. *)
  let sim0 = simulate cfg ring ~fact reqs in
  (match missing sim0 with
  | [] -> ()
  | need ->
      let pool =
        Pool.create ~workers:nworkers ~steal:cfg.steal
          ~exec:(fun wid r -> Shard.exec workers.(wid) r)
          ()
      in
      List.iter
        (fun (r : Workload.request) ->
          let home = Hashtbl.find sim0.sim_assign r.Workload.id in
          Pool.submit pool ~worker:(home mod nworkers) r)
        need;
      let outs = Pool.drain pool in
      List.iter
        (fun (o : Shard.outcome) ->
          Hashtbl.replace table o.Shard.request.Workload.id o)
        outs;
      Array.iteri (fun i n -> hs_executed.(i) <- hs_executed.(i) + n)
        (Pool.executed pool);
      Array.iteri (fun i n -> hs_stolen.(i) <- hs_stolen.(i) + n)
        (Pool.steals pool));
  (* Converge: trips discovered above can quarantine a shard and
     reroute later windows, which may admit a request the optimistic
     pass shed.  Each round executes only those stragglers (inline —
     they are rare and the pool is drained), so the loop adds at least
     one outcome per round and terminates. *)
  let rec converge sim =
    match missing sim with
    | [] -> sim
    | need ->
        List.iter
          (fun (r : Workload.request) ->
            let o = Shard.exec workers.(0) r in
            hs_executed.(0) <- hs_executed.(0) + 1;
            Hashtbl.replace table r.Workload.id o)
          need;
        converge (simulate cfg ring ~fact reqs)
  in
  let sim = converge (simulate cfg ring ~fact reqs) in
  (* Rebuild the deterministic product: outcomes keyed by request id,
     attributed to their simulated shard; per-shard summaries replayed
     from the simulation; dispatch stats straight from it. *)
  let outcomes =
    List.filter_map
      (fun (r : Workload.request) ->
        match Hashtbl.find_opt sim.sim_assign r.Workload.id with
        | None -> None
        | Some s ->
            let o = Hashtbl.find table r.Workload.id in
            Some { o with Shard.shard_id = s })
      reqs
    |> List.sort by_id
  in
  let ok =
    List.fold_left
      (fun a (o : Shard.outcome) -> if o.Shard.ok then a + 1 else a)
      0 outcomes
  in
  let quarantined =
    Array.fold_left (fun a q -> if q then a + 1 else a) 0 sim.sim_quarantined
  in
  (* Host-side half of a migration: once the campaign has drained, the
     source worker's cached classes move to the target worker through
     the incremental-snapshot handoff (chain, delta, flatten, checked
     restore, re-seal).  Under the bulk-pool execution model the host
     transfer happens at drain — the mid-campaign rerouting lives in
     the simulation above — and runs after every outcome is recorded,
     so it can never affect the report. *)
  (match cfg.migrate with
  | Some (_, s_from, s_to) ->
      let src = workers.(s_from mod nworkers)
      and dst = workers.(s_to mod nworkers) in
      if src != dst then
        List.iter
          (fun (k, _) -> Shard.handoff src k dst)
          (List.sort compare (Shard.images src))
  | None -> ());
  {
    models = model_of_sim cfg sim ~fact;
    outcomes;
    stats =
      {
        completed = List.length outcomes;
        ok;
        shed = sim.sim_shed;
        redistributed = sim.sim_redistributed;
        routed_hash = sim.sim_routed_hash;
        routed_balanced = sim.sim_routed_balanced;
        batches = sim.sim_batches;
        makespan = sim.sim_makespan;
        quarantined;
        migrated = sim.sim_migrated;
        restarts = sim.sim_restarts;
        peak_active = sim.sim_peak_active;
      };
    workers;
    host =
      {
        hs_workers = nworkers;
        hs_steal = cfg.steal;
        hs_executed;
        hs_stolen;
      };
  }
