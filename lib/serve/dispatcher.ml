(* Routing and fleet execution.  Every routing decision reads modeled
   state only — class hashes, queue depths, quarantine flags — and
   each dispatch window ends in a Domain.join barrier, so the
   (request, shard, outcome) relation is a pure function of
   (workload, config) no matter how the host schedules the domains. *)

module Route = struct
  type ring = { points : (int64 * int) array }

  (* FNV-1a 64 with a murmur3 avalanche finalizer.  Raw FNV of short
     keys like "shard:3:0" barely diffuses — every replica of a shard
     lands in one tight cluster and the ring degenerates — so the
     finalizer spreads each point over the full 64-bit space.  Int64
     because OCaml's native int is 63-bit; unsigned compares keep the
     ring ordered. *)
  let hash64 s =
    let h = ref 0xcbf29ce484222325L in
    String.iter
      (fun c ->
        h :=
          Int64.mul
            (Int64.logxor !h (Int64.of_int (Char.code c)))
            0x100000001b3L)
      s;
    let mix h =
      let h = Int64.logxor h (Int64.shift_right_logical h 33) in
      let h = Int64.mul h 0xff51afd7ed558ccdL in
      let h = Int64.logxor h (Int64.shift_right_logical h 33) in
      let h = Int64.mul h 0xc4ceb9fe1a85ec53L in
      Int64.logxor h (Int64.shift_right_logical h 33)
    in
    mix !h

  let make ~shards ~replicas =
    if shards < 1 then invalid_arg "Route.make: shards < 1";
    if replicas < 1 then invalid_arg "Route.make: replicas < 1";
    let points =
      Array.init (shards * replicas) (fun i ->
          let s = i / replicas and r = i mod replicas in
          (hash64 (Printf.sprintf "shard:%d:%d" s r), s))
    in
    Array.sort
      (fun (a, sa) (b, sb) ->
        match Int64.unsigned_compare a b with 0 -> compare sa sb | c -> c)
      points;
    { points }

  let klass_key (p, n) = Printf.sprintf "%s/%d" p n

  (* Index of the first point at or after [h], wrapping past the top
     of the ring to point 0. *)
  let successor ring h =
    let n = Array.length ring.points in
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      let ph, _ = ring.points.(mid) in
      if Int64.unsigned_compare ph h < 0 then lo := mid + 1 else hi := mid
    done;
    if !lo = n then 0 else !lo

  let owner ring k = snd ring.points.(successor ring (hash64 (klass_key k)))

  let owner_alive ring ~alive k =
    let n = Array.length ring.points in
    let start = successor ring (hash64 (klass_key k)) in
    let rec go i =
      if i = n then None
      else
        let _, s = ring.points.((start + i) mod n) in
        if alive s then Some s else go (i + 1)
    in
    go 0
end

type config = {
  shards : int;
  queue_cap : int;
  imbalance : int;
  replicas : int;
  batch_window : int;
  image_cap : int;
  watchdog : int option;
  inject : Hw.Inject.plan option;
  preload : (Shard.klass * string) list;
}

let default_config ~shards =
  {
    shards;
    queue_cap = 64;
    imbalance = 4;
    replicas = 16;
    batch_window = 4096;
    image_cap = 8;
    watchdog = None;
    inject = None;
    preload = [];
  }

type stats = {
  completed : int;
  ok : int;
  shed : int;
  redistributed : int;
  routed_hash : int;
  routed_balanced : int;
  batches : int;
  makespan : int;
  quarantined : int;
}

let by_id (a : Shard.outcome) (b : Shard.outcome) =
  compare a.Shard.request.Workload.id b.Shard.request.Workload.id

let req_id (r : Workload.request) = r.Workload.id

let run cfg reqs =
  if cfg.shards < 1 then invalid_arg "Dispatcher.run: shards < 1";
  if cfg.queue_cap < 1 then invalid_arg "Dispatcher.run: queue_cap < 1";
  if cfg.batch_window < 1 then invalid_arg "Dispatcher.run: batch_window < 1";
  let shards =
    Array.init cfg.shards (fun i ->
        Shard.create ~id:i ~image_cap:cfg.image_cap ?inject:cfg.inject
          ?watchdog:cfg.watchdog ~preload:cfg.preload ())
  in
  let ring = Route.make ~shards:cfg.shards ~replicas:cfg.replicas in
  let completed = ref 0
  and ok = ref 0
  and shed = ref 0
  and redistributed = ref 0
  and routed_hash = ref 0
  and routed_balanced = ref 0
  and batches = ref 0
  and makespan = ref 0 in
  let outcomes = ref [] in
  (* Requests still to arrive, ascending by arrival (the generator
     emits them that way); requests bounced off a quarantined shard
     waiting for the next window. *)
  let pending = ref reqs and carry = ref [] in
  let split_window w =
    let rec go acc = function
      | (r : Workload.request) :: rest
        when r.Workload.arrival / cfg.batch_window = w ->
          go (r :: acc) rest
      | rest -> (List.rev acc, rest)
    in
    go [] !pending
  in
  while !pending <> [] || !carry <> [] do
    let arrived, rest =
      match !pending with
      | [] -> ([], [])
      | r :: _ -> split_window (r.Workload.arrival / cfg.batch_window)
    in
    pending := rest;
    let batch = !carry @ arrived in
    carry := [];
    incr batches;
    (* Route the window.  Queue depths only count this window's
       requests: the previous window fully drained at its barrier. *)
    let queues = Array.make cfg.shards [] in
    let qlen = Array.make cfg.shards 0 in
    let alive s = not (Shard.quarantined shards.(s)) in
    List.iter
      (fun (r : Workload.request) ->
        match
          Route.owner_alive ring ~alive (r.Workload.program, r.Workload.iterations)
        with
        | None -> incr shed
        | Some pref ->
            (* Least-loaded live shard, lowest id on ties.  [pref] is
               alive, so the scan always finds something. *)
            let best = ref pref in
            for s = 0 to cfg.shards - 1 do
              if alive s && qlen.(s) < qlen.(!best) then best := s
            done;
            let target =
              if
                qlen.(pref) < cfg.queue_cap
                && qlen.(pref) - qlen.(!best) <= cfg.imbalance
              then (
                incr routed_hash;
                pref)
              else if qlen.(!best) < cfg.queue_cap then (
                if !best = pref then incr routed_hash
                else incr routed_balanced;
                !best)
              else -1
            in
            if target < 0 then incr shed
            else (
              qlen.(target) <- qlen.(target) + 1;
              queues.(target) <- r :: queues.(target)))
      batch;
    (* Execute: one domain per nonempty queue, joined at the window
       boundary.  The join is the determinism barrier — nothing reads
       a shard's results before every shard has finished. *)
    let work =
      List.filter_map
        (fun s -> if queues.(s) = [] then None else Some (s, List.rev queues.(s)))
        (List.init cfg.shards Fun.id)
    in
    let doms =
      List.map
        (fun (s, q) ->
          (s, Domain.spawn (fun () -> Shard.run_batch shards.(s) q)))
        work
    in
    let results = List.map (fun (s, d) -> (s, Domain.join d)) doms in
    let window_max = ref 0 in
    List.iter
      (fun (s, (outs, remainder)) ->
        let busy =
          List.fold_left (fun a (o : Shard.outcome) -> a + o.Shard.latency) 0 outs
        in
        if busy > !window_max then window_max := busy;
        List.iter
          (fun (o : Shard.outcome) ->
            incr completed;
            if o.Shard.ok then incr ok;
            outcomes := o :: !outcomes)
          outs;
        if List.exists (fun (o : Shard.outcome) -> o.Shard.tripped) outs then
          Shard.set_quarantined shards.(s) true;
        redistributed := !redistributed + List.length remainder;
        carry := !carry @ remainder)
      results;
    carry := List.sort (fun a b -> compare (req_id a) (req_id b)) !carry;
    makespan := !makespan + !window_max
  done;
  let quarantined =
    Array.fold_left (fun a s -> if Shard.quarantined s then a + 1 else a) 0 shards
  in
  ( shards,
    List.sort by_id !outcomes,
    {
      completed = !completed;
      ok = !ok;
      shed = !shed;
      redistributed = !redistributed;
      routed_hash = !routed_hash;
      routed_balanced = !routed_balanced;
      batches = !batches;
      makespan = !makespan;
      quarantined;
    } )
