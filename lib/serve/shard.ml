(* One worker of the serving fleet.  The shard keeps a bounded LRU of
   booted machines keyed by service class; serving a cached class is a
   warm boot (rewind the machine to its boot image), serving a new one
   is a cold boot (assemble, spawn, capture).  Nothing here reads host
   time or host randomness, so an outcome depends only on the class
   and the injection plan — not on which shard, domain or queue
   position served it. *)

type klass = string * int

type trace_cfg = { sample : int; seed : int; capacity : int; instr : int }

let default_trace_capacity = 4096

type request_trace = {
  t_events : Trace.Event.stamped list;
  t_spans : Trace.Span.completed list;
  t_seen : int;
  t_dropped : int;
  t_sampled_out : int;
  t_high_water : int;
  t_spans_sampled_out : int;
}

type outcome = {
  request : Workload.request;
  shard_id : int;
  exit_label : string;
  ok : bool;
  latency : int;
  delta : Trace.Counters.snapshot;
  ring_cycles : (int * int * int) list;
  kernel_cycles : int;
  tripped : bool;
  trace : request_trace option;
}

(* ------------------------------------------------------------------ *)
(* Program catalog *)

type prog = {
  p_mode : Isa.Machine.mode;
  p_paged : bool;
  p_ring : int;
  p_start : string;
  p_sources : int -> (string * Os.Acl.entry list * string) list;
}

let acl_all access = [ { Os.Acl.user = Os.Acl.wildcard; access } ]

(* The same caller/gated-service shape as Os.Scenario.crossing, spelt
   out here because the shard needs the sources (to feed its own
   Store), not a booted Process. *)
let crossing_sources ~caller_ring ~callee_ring ?callable_from
    ~with_argument iterations =
  let callable_from =
    match callable_from with
    | Some r -> r
    | None -> max caller_ring callee_ring
  in
  let arg_symbol = if with_argument then Some "data$word0" else None in
  let r_data = max caller_ring callee_ring in
  [
    ( "caller",
      acl_all
        (Rings.Access.procedure_segment ~execute_in:caller_ring
           ~callable_from:caller_ring ()),
      Os.Scenario.caller_source ?arg_symbol ~callee_link:"service$entry"
        ~iterations () );
    ( "service",
      acl_all
        (Rings.Access.procedure_segment ~execute_in:callee_ring
           ~callable_from ()),
      Os.Scenario.callee_source ~touch_argument:with_argument () );
  ]
  @
  if with_argument then
    [
      ( "data",
        acl_all
          (Rings.Access.data_segment ~writable_to:r_data ~readable_to:r_data
             ()),
        "word0:  .word 7\n" );
    ]
  else []

(* A gateless compute loop: retires instructions without ever
   faulting, crossing or touching a channel, so it is exactly what the
   run watchdog quarantines.  Not part of any default mix; the
   quarantine tests inject it deliberately. *)
let spin_sources iterations =
  [
    ( "spin",
      acl_all
        (Rings.Access.procedure_segment ~execute_in:4 ~callable_from:4 ()),
      Printf.sprintf
        "start:  lda =%d\nloop:   sba =1\n        tnz loop\n        mme =2\n"
        iterations );
  ]

let catalog =
  [
    ( "crossing-hw",
      {
        p_mode = Isa.Machine.Ring_hardware;
        p_paged = false;
        p_ring = 4;
        p_start = "caller";
        p_sources =
          crossing_sources ~caller_ring:4 ~callee_ring:1 ~with_argument:false;
      } );
    ( "crossing-645",
      {
        p_mode = Isa.Machine.Ring_software_645;
        p_paged = false;
        p_ring = 4;
        p_start = "caller";
        p_sources =
          crossing_sources ~caller_ring:4 ~callee_ring:1 ~with_argument:false;
      } );
    ( "same-ring",
      {
        p_mode = Isa.Machine.Ring_hardware;
        p_paged = false;
        p_ring = 4;
        p_start = "caller";
        p_sources =
          crossing_sources ~caller_ring:4 ~callee_ring:4 ~callable_from:4
            ~with_argument:false;
      } );
    ( "outward",
      {
        p_mode = Isa.Machine.Ring_hardware;
        p_paged = false;
        p_ring = 1;
        p_start = "caller";
        p_sources =
          crossing_sources ~caller_ring:1 ~callee_ring:3 ~with_argument:false;
      } );
    ( "argcross",
      {
        p_mode = Isa.Machine.Ring_hardware;
        p_paged = false;
        p_ring = 4;
        p_start = "caller";
        p_sources =
          crossing_sources ~caller_ring:4 ~callee_ring:1 ~with_argument:true;
      } );
    ( "paged",
      {
        p_mode = Isa.Machine.Ring_hardware;
        p_paged = true;
        p_ring = 4;
        p_start = "caller";
        p_sources =
          crossing_sources ~caller_ring:4 ~callee_ring:1 ~with_argument:true;
      } );
    ( "spin",
      {
        p_mode = Isa.Machine.Ring_hardware;
        p_paged = false;
        p_ring = 4;
        p_start = "spin";
        p_sources = spin_sources;
      } );
  ]

let programs = List.map fst catalog
let known_program name = List.mem_assoc name catalog

(* ------------------------------------------------------------------ *)
(* Shard state *)

type slot = {
  sys : Os.System.t;
  image : string;
  boot : Trace.Counters.snapshot;
  boot_rings : (int * int * int) list;
  boot_kernel : int;
}

type t = {
  sid : int;
  cache : (klass, slot) Hw.Assoc.t;
  backend : Isa.Machine.mode option;
  inject : Hw.Inject.plan option;
  watchdog : int option;
  trace_cfg : trace_cfg option;
  mutable preload : (klass * string) list;
  mutable is_quarantined : bool;
  mutable n_executed : int;
  mutable busy : int;
  mutable cold : int;
  mutable warm : int;
}

let create ~id ?(image_cap = 8) ?backend ?inject ?watchdog ?trace
    ?(preload = []) () =
  (match trace with
  | Some c when c.sample < 1 -> invalid_arg "Shard.create: trace sample < 1"
  | Some c when c.capacity < 1 ->
      invalid_arg "Shard.create: trace capacity < 1"
  | Some c when c.instr < 0 -> invalid_arg "Shard.create: trace instr < 0"
  | _ -> ());
  {
    sid = id;
    cache = Hw.Assoc.create ~capacity:image_cap ();
    backend;
    inject;
    watchdog;
    trace_cfg = trace;
    preload;
    is_quarantined = false;
    n_executed = 0;
    busy = 0;
    cold = 0;
    warm = 0;
  }

let id t = t.sid
let quarantined t = t.is_quarantined
let set_quarantined t q = t.is_quarantined <- q
let executed t = t.n_executed
let busy_cycles t = t.busy
let cold_boots t = t.cold
let warm_boots t = t.warm
let image_stats t = Hw.Assoc.stats t.cache
let images t = Hw.Assoc.fold (fun k s acc -> (k, s.image) :: acc) t.cache []

(* ------------------------------------------------------------------ *)
(* Booting *)

(* One 2^18-word region: a shard system holds exactly one process, and
   the smaller core keeps the snapshot image (and thus every warm
   boot's memory sweep) an eighth of the default machine's. *)
let shard_mem = 1 lsl 18

let fail fmt = Printf.ksprintf failwith fmt

let build_system t prog ~iterations =
  let sources = prog.p_sources iterations in
  let store = Os.Store.create () in
  List.iter
    (fun (name, acl, src) -> Os.Store.add_source store ~name ~acl src)
    sources;
  (* A shard-wide backend override forces every class onto one
     protection implementation — the three-way bench serves the same
     catalog under hw, 645 and cap shards and compares. *)
  let mode = Option.value t.backend ~default:prog.p_mode in
  let sys = Os.System.create ~mode ~mem_size:shard_mem ~store () in
  match
    Os.System.spawn sys ~paged:prog.p_paged ~pname:"req" ~user:"alice"
      ~segments:(List.map (fun (n, _, _) -> n) sources)
      ~start:(prog.p_start, "start") ~ring:prog.p_ring
  with
  | Error e -> fail "shard %d: cannot spawn %s: %s" t.sid prog.p_start e
  | Ok entry ->
      (match t.inject with
      | None -> ()
      | Some plan ->
          let inj = Hw.Inject.create plan in
          List.iter
            (fun (base, len) ->
              Hw.Inject.register_descriptor_range inj ~base ~len)
            (Os.Process.descriptor_ranges entry.Os.System.process);
          Isa.Machine.attach_injector (Os.System.machine sys) inj);
      let m = Os.System.machine sys in
      Trace.Profile.set_enabled m.Isa.Machine.profile true;
      (* Tracing is configured BEFORE the slot image is captured, so
         the enabled/sampling/capacity state — and the empty buffers —
         are part of the boot image.  Every warm boot rewinds to that
         state, which makes a request's trace a deterministic function
         of its class alone, independent of shard and service order. *)
      (match t.trace_cfg with
      | None -> ()
      | Some c ->
          Trace.Event.set_capacity m.Isa.Machine.log c.capacity;
          Trace.Event.set_sampling m.Isa.Machine.log ~interval:c.sample
            ~seed:c.seed;
          if c.instr > 0 then
            Trace.Event.set_instr_sampling m.Isa.Machine.log ~interval:c.instr;
          Trace.Event.set_enabled m.Isa.Machine.log true;
          Trace.Span.set_sampling m.Isa.Machine.spans ~interval:c.sample
            ~seed:c.seed;
          Trace.Span.set_enabled m.Isa.Machine.spans true);
      sys

let seal_slot sys =
  (* Capture AFTER enabling the profile and attaching the injector, so
     both rewind with the machine.  The boot snapshot is read after the
     capture: Snapshot.capture bumps [snapshots_written] before
     serializing, so the live counters now equal the image's — warm
     boot restores exactly this state and per-request deltas compare
     against it cleanly. *)
  let image = Os.Snapshot.capture sys in
  let m = Os.System.machine sys in
  {
    sys;
    image;
    boot = Trace.Counters.snapshot m.Isa.Machine.counters;
    boot_rings = Trace.Profile.per_ring m.Isa.Machine.profile;
    boot_kernel = Trace.Profile.kernel_cycles m.Isa.Machine.profile;
  }

let cold_boot t ((program, iterations) as k) =
  let prog =
    match List.assoc_opt program catalog with
    | Some p -> p
    | None -> fail "shard %d: unknown program %s" t.sid program
  in
  let sys = build_system t prog ~iterations in
  (match List.assoc_opt k t.preload with
  | None -> ()
  | Some image -> (
      (* A disk image is untrusted: full checked restore, then re-seal
         with our own capture so later warm boots stay in-process. *)
      t.preload <- List.remove_assoc k t.preload;
      match Os.Snapshot.restore sys image with
      | Ok () -> ()
      | Error e ->
          fail "shard %d: preloaded image for %s/%d rejected: %s" t.sid
            program iterations
            (Format.asprintf "%a" Os.Snapshot.pp_error e)));
  let slot = seal_slot sys in
  t.cold <- t.cold + 1;
  ignore (Hw.Assoc.insert t.cache k slot);
  slot

let boot t k =
  match Hw.Assoc.find t.cache k with
  | None -> cold_boot t k
  | Some slot -> (
      match Os.Snapshot.warm_boot slot.sys slot.image with
      | Ok () ->
          t.warm <- t.warm + 1;
          slot
      | Error e ->
          fail "shard %d: warm boot failed: %s" t.sid
            (Format.asprintf "%a" Os.Snapshot.pp_error e))

(* ------------------------------------------------------------------ *)
(* Handoff *)

(* Move a class's boot slot to another shard over the incremental
   snapshot transfer.  The source opens a chain at its machine's
   current (post-serving) state, drains by rewinding to the class's
   sealed boot image — every page that rewind rewrites lands in the
   dirty map — and captures the rewind as a delta.  Base plus delta
   flatten into a full image describing exactly the class boot state,
   which the destination restores with full validation (checksum,
   shape, self-check, kernel-table audit: a cross-shard image is
   untrusted by definition) onto a freshly built system of the same
   class, then re-seals for its own warm boots.  The source forgets
   the class. *)
let handoff src k dst =
  let program, iterations = k in
  let prog =
    match List.assoc_opt program catalog with
    | Some p -> p
    | None -> fail "shard %d: handoff: unknown program %s" src.sid program
  in
  match Hw.Assoc.find src.cache k with
  | None ->
      fail "shard %d: handoff: class %s/%d not cached" src.sid program
        iterations
  | Some slot ->
      let chain, base = Os.Snapshot.start_chain slot.sys in
      (match Os.Snapshot.warm_boot slot.sys slot.image with
      | Ok () -> ()
      | Error e ->
          fail "shard %d: handoff: rewind of %s/%d failed: %s" src.sid
            program iterations
            (Format.asprintf "%a" Os.Snapshot.pp_error e));
      let delta = Os.Snapshot.capture_delta slot.sys chain in
      let image =
        match Os.Snapshot.flatten ~base [ delta ] with
        | Ok img -> img
        | Error e ->
            fail "shard %d: handoff: flatten of %s/%d failed: %s" src.sid
              program iterations
              (Format.asprintf "%a" Os.Snapshot.pp_error e)
      in
      let sys = build_system dst prog ~iterations in
      (match Os.Snapshot.restore sys image with
      | Ok () -> ()
      | Error e ->
          fail "shard %d: handoff of %s/%d to shard %d rejected: %s" src.sid
            program iterations dst.sid
            (Format.asprintf "%a" Os.Snapshot.pp_error e));
      ignore (Hw.Assoc.remove src.cache k);
      ignore (Hw.Assoc.insert dst.cache k (seal_slot sys))

(* ------------------------------------------------------------------ *)
(* Serving *)

let exit_label : Os.Kernel.exit -> string = function
  | Os.Kernel.Halted -> "halted"
  | Os.Kernel.Exited -> "exited"
  | Os.Kernel.Preempted -> "preempted"
  | Os.Kernel.Blocked -> "blocked"
  | Os.Kernel.Terminated _ -> "terminated"
  | Os.Kernel.Gatekeeper_error _ -> "gatekeeper-error"
  | Os.Kernel.Out_of_budget -> "out-of-budget"
  | Os.Kernel.Quarantined _ -> "quarantined"

let ring_delta before after =
  List.filter_map
    (fun (r, c, i) ->
      let c, i =
        match List.find_opt (fun (r', _, _) -> r' = r) before with
        | Some (_, c0, i0) -> (c - c0, i - i0)
        | None -> (c, i)
      in
      if c = 0 && i = 0 then None else Some (r, c, i))
    after

let exec t (req : Workload.request) =
  let slot = boot t (req.Workload.program, req.Workload.iterations) in
  let exits = Os.System.run ?watchdog:t.watchdog slot.sys in
  let exit =
    match List.assoc_opt "req" exits with
    | Some e -> e
    | None -> Os.Kernel.Out_of_budget
  in
  let m = Os.System.machine slot.sys in
  let after = Trace.Counters.snapshot m.Isa.Machine.counters in
  let delta = Trace.Counters.diff ~before:slot.boot ~after in
  let tripped =
    (match exit with Os.Kernel.Quarantined _ -> true | _ -> false)
    || delta.Trace.Counters.watchdog_tripped > 0
  in
  t.n_executed <- t.n_executed + 1;
  t.busy <- t.busy + delta.Trace.Counters.cycles;
  let trace =
    match t.trace_cfg with
    | None -> None
    | Some _ ->
        let log = m.Isa.Machine.log and spans = m.Isa.Machine.spans in
        (* Close spans a fault or budget exhaustion left open, then
           drain the per-request buffers.  Instruction text resolves
           here, against the machine's end-of-run state — before the
           next warm boot rewinds it. *)
        Trace.Span.drain spans
          ~cycles:(Trace.Counters.cycles m.Isa.Machine.counters);
        Some
          {
            t_events = Trace.Event.stamped_events log;
            t_spans = Trace.Span.completed spans;
            t_seen = Trace.Event.seen log;
            t_dropped = Trace.Event.dropped log;
            t_sampled_out = Trace.Event.sampled_out log;
            t_high_water = Trace.Event.high_water log;
            t_spans_sampled_out = Trace.Span.sampled_out spans;
          }
  in
  {
    request = req;
    shard_id = t.sid;
    exit_label = exit_label exit;
    ok = (exit = Os.Kernel.Exited);
    latency = delta.Trace.Counters.cycles;
    delta;
    ring_cycles =
      ring_delta slot.boot_rings (Trace.Profile.per_ring m.Isa.Machine.profile);
    kernel_cycles =
      Trace.Profile.kernel_cycles m.Isa.Machine.profile - slot.boot_kernel;
    tripped;
    trace;
  }
