(** Request routing and fleet execution, decoupled.

    {b Routing is a pure simulation.}  The dispatcher slices the
    workload's virtual clock into batch windows, routes each window's
    requests over the live shards — consistent hashing on the service
    class so warm boot images stay hot, with a least-loaded override
    when the hash leaves a shard too far behind — sheds on full
    queues, and quarantines a shard whose request trips the watchdog
    or fault budget, redistributing its unserved queue.  All of that
    reads modeled state only: class hashes, per-window queue depths,
    quarantine flags, and two per-request facts (latency, tripped)
    that are themselves placement-independent.  The simulated
    placement, the dispatch statistics (including the modeled
    makespan) and the per-shard summaries are therefore pure functions
    of (workload, config).

    {b Execution is a persistent worker pool.}  Requests run on
    [pool] long-lived domains (see {!Pool}): each worker pulls from
    its own deque — filled by the simulated placement so a service
    class keeps hitting the same worker's image cache — and steals
    from the tails of sibling deques when its own runs dry.  There is
    no per-window spawn/join barrier; workers park on a condition
    variable when idle and are joined once, at drain.  Because a boot
    rewinds the machine to the sealed class image, an outcome is the
    same whichever worker serves it, so host scheduling and steal
    order change only wall-clock time — never the report.  See
    docs/SCALING.md.

    Backpressure is loss, not blocking: window queues are bounded and
    a request that finds every live queue full is shed and counted. *)

module Route : sig
  (** The consistent-hash ring, exposed for tests: pure functions of
      the shard count and replica count. *)

  type ring

  val hash64 : string -> int64
  (** FNV-1a 64 of a key. *)

  val make : shards:int -> replicas:int -> ring
  (** [replicas] virtual points per shard. *)

  val owner : ring -> Shard.klass -> int
  (** The shard whose point follows the class's hash (wrapping). *)

  val owner_alive : ring -> alive:(int -> bool) -> Shard.klass -> int option
  (** Like {!owner}, but walking past points of dead shards; [None]
      when no shard is alive. *)
end

type config = {
  shards : int;  (** Fleet size; must be >= 1. *)
  queue_cap : int;  (** Per-shard, per-window queue bound. *)
  imbalance : int;
      (** Least-loaded override threshold: the hash-preferred shard is
          overridden when its queue exceeds the shortest live queue by
          more than this. *)
  replicas : int;  (** Virtual ring points per shard. *)
  batch_window : int;  (** Virtual cycles per dispatch window. *)
  image_cap : int;  (** Boot-image cache capacity per shard. *)
  backend : Isa.Machine.mode option;
      (** Protection-backend override applied to every shard
          ({!Shard.create}): the whole fleet serves under hardware
          rings, 645 software rings or the capability machine. *)
  watchdog : int option;  (** Per-run watchdog budget for every shard. *)
  inject : Hw.Inject.plan option;  (** Fault plan attached to every shard. *)
  preload : (Shard.klass * string) list;
      (** Externally captured boot images ([--snapshot]). *)
  pool : int option;
      (** Worker domains executing the campaign; [None] sizes the pool
          to [min shards (Domain.recommended_domain_count ())].  Pool
          size affects host time only, never the report. *)
  steal : bool;
      (** Allow idle workers to steal from sibling deque tails.
          Affects host time only, never the report. *)
  trace : Shard.trace_cfg option;
      (** Per-request tracing on every shard; traces land in
          {!Shard.outcome.trace}.  Because the trace configuration is
          sealed into each class's boot image, the captured traces are
          placement-independent like every other outcome field. *)
  migrate : (int * int * int) option;
      (** [(window, from, to)]: at dispatch window [window] (0-based
          ordinal) drain shard [from] — its routed queue rides the
          carry to the next window in arrival order, like a quarantine
          redistribution — and retire it from the rotation; from the
          next window its classes route to shard [to].  After the
          campaign drains, the source worker's cached boot images move
          to the target worker through {!Shard.handoff}.  Because
          outcomes are placement-independent and the drain only moves
          (never drops) requests, a migration leaves the report's
          fleet section byte-identical as long as nothing is shed. *)
  restart_every : int option;
      (** Rolling restarts: every [n] windows the next shard in id
          order goes down for exactly one window — the ring routes
          around it, nothing queues on it (zero dropped requests), and
          it comes back with a cold boot-image cache. *)
  autoscale : bool;
      (** Queue-depth-driven shard autoscaling: routing starts on one
          active shard; before each window the active set grows until
          the window's offered load fits within 3/4 of its aggregate
          queue capacity (so a burst is absorbed, not shed), and after
          a quiet window it shrinks when routed depth falls below a
          quarter of the next-smaller set's capacity.  [shards] is the
          ceiling.  Purely modeled, so placement stays deterministic. *)
}

val default_config : shards:int -> config
(** [queue_cap 64], [imbalance 4], [replicas 16], [batch_window 4096],
    [image_cap 8], no watchdog, no injection, no preload, pool sized
    to the host, stealing on, no tracing, no migration, no rolling
    restarts, no autoscaling. *)

type stats = {
  completed : int;  (** Requests served to an exit. *)
  ok : int;  (** Of those, how many exited cleanly. *)
  shed : int;  (** Dropped: every live queue full, or no shard live. *)
  redistributed : int;
      (** Requests re-queued after their shard was quarantined. *)
  routed_hash : int;  (** Requests placed on their hash-preferred shard. *)
  routed_balanced : int;  (** Requests moved by the least-loaded override. *)
  batches : int;  (** Dispatch windows routed. *)
  makespan : int;
      (** Modeled fleet time: the sum over windows of the slowest
          shard's busy cycles in that window — what wall-clock would
          be if each shard were a real machine. *)
  quarantined : int;  (** Shards quarantined by the end of the run. *)
  migrated : int;
      (** Requests drained off the migrating shard at its drain window
          (re-queued, never dropped). *)
  restarts : int;  (** Rolling-restart cycles taken. *)
  peak_active : int;
      (** Autoscale high-water mark of the active shard set; equals
          [shards] when autoscaling is off. *)
}

type shard_model = {
  ms_id : int;
  ms_served : int;  (** Requests the simulation placed on this shard. *)
  ms_cold : int;  (** Cold boots in simulated service order. *)
  ms_warm : int;  (** Warm boots in simulated service order. *)
  ms_busy : int;  (** Sum of served requests' modeled latencies. *)
  ms_image : Hw.Assoc.stats;
      (** Image-cache hits/misses/evictions replayed over the
          simulated service order at [image_cap] capacity. *)
  ms_quarantined : bool;
}
(** One shard of the {e modeled} fleet.  Deterministic: replayed from
    the routing simulation in service order, so the numbers are what a
    dedicated per-shard machine would have counted — independent of
    which pool worker actually ran each request on the host. *)

type host_stats = {
  hs_workers : int;  (** Resolved pool size. *)
  hs_steal : bool;
  hs_executed : int array;  (** Per-worker requests executed (host order). *)
  hs_stolen : int array;  (** Per-worker requests stolen from siblings. *)
}
(** Host-side execution accounting.  Nondeterministic by nature (it
    measures the host scheduler); kept out of the deterministic
    report. *)

type result = {
  models : shard_model array;
  outcomes : Shard.outcome list;
      (** Sorted by request id, [shard_id] set to the simulated
          placement; shed requests are absent. *)
  stats : stats;
  workers : Shard.t array;
      (** The pool workers' shard states, for image persistence
          ([--snapshot]); their counters are host-scheduling dependent
          — report from [models] instead. *)
  host : host_stats;
}

val run : config -> Workload.request list -> result
(** Execute the whole workload.  Raises [Invalid_argument] on a bad
    config ([shards < 1], [queue_cap < 1], [batch_window < 1],
    [image_cap < 0], [imbalance < 0], [replicas < 1], [pool] some
    value [< 1], a [migrate] triple out of range or with source equal
    to target, [restart_every] below 1) and [Failure] on a
    catalog/assembly defect (unknown program, bad image). *)
