(** Request routing and fleet execution across shard domains.

    The dispatcher slices the workload's virtual clock into batch
    windows, routes each window's requests over the live shards —
    consistent hashing on the service class so warm boot images stay
    hot, with a least-loaded override when the hash leaves a shard too
    far behind — and runs every shard's queue on its own OCaml domain,
    joining them all at the window boundary.

    Determinism: routing reads only modeled state (class hashes, queue
    lengths, quarantine flags), every queue is served in order by a
    deterministic shard, and the window join is a barrier, so the set
    of (request, shard, outcome) triples — and therefore the
    aggregated report — is a pure function of (workload, config),
    whatever the host's domain interleaving.  See docs/SCALING.md.

    Backpressure is loss, not blocking: queues are bounded and a
    request that finds every live queue full is shed and counted.
    When a request trips quarantine (fault budget or watchdog), its
    shard stops, is marked quarantined, and the unserved remainder of
    its queue is redistributed over the surviving shards in the next
    window. *)

module Route : sig
  (** The consistent-hash ring, exposed for tests: pure functions of
      the shard count and replica count. *)

  type ring

  val hash64 : string -> int64
  (** FNV-1a 64 of a key. *)

  val make : shards:int -> replicas:int -> ring
  (** [replicas] virtual points per shard. *)

  val owner : ring -> Shard.klass -> int
  (** The shard whose point follows the class's hash (wrapping). *)

  val owner_alive : ring -> alive:(int -> bool) -> Shard.klass -> int option
  (** Like {!owner}, but walking past points of dead shards; [None]
      when no shard is alive. *)
end

type config = {
  shards : int;  (** Fleet size; must be >= 1. *)
  queue_cap : int;  (** Per-shard, per-window queue bound. *)
  imbalance : int;
      (** Least-loaded override threshold: the hash-preferred shard is
          overridden when its queue exceeds the shortest live queue by
          more than this. *)
  replicas : int;  (** Virtual ring points per shard. *)
  batch_window : int;  (** Virtual cycles per dispatch window. *)
  image_cap : int;  (** Boot-image cache capacity per shard. *)
  watchdog : int option;  (** Per-run watchdog budget for every shard. *)
  inject : Hw.Inject.plan option;  (** Fault plan attached to every shard. *)
  preload : (Shard.klass * string) list;
      (** Externally captured boot images ([--snapshot]). *)
}

val default_config : shards:int -> config
(** [queue_cap 64], [imbalance 4], [replicas 16], [batch_window 4096],
    [image_cap 8], no watchdog, no injection, no preload. *)

type stats = {
  completed : int;  (** Requests served to an exit. *)
  ok : int;  (** Of those, how many exited cleanly. *)
  shed : int;  (** Dropped: every live queue full, or no shard live. *)
  redistributed : int;
      (** Requests re-queued after their shard was quarantined. *)
  routed_hash : int;  (** Requests placed on their hash-preferred shard. *)
  routed_balanced : int;  (** Requests moved by the least-loaded override. *)
  batches : int;  (** Dispatch windows executed. *)
  makespan : int;
      (** Modeled fleet time: the sum over windows of the slowest
          shard's busy cycles in that window — what wall-clock would
          be if each shard were a real machine. *)
  quarantined : int;  (** Shards quarantined by the end of the run. *)
}

val run :
  config -> Workload.request list -> Shard.t array * Shard.outcome list * stats
(** Execute the whole workload.  Outcomes come back sorted by request
    id (shed requests are absent).  The shard array is returned for
    per-shard reporting and image persistence.  Raises
    [Invalid_argument] on a config with [shards < 1], and [Failure]
    on a catalog/assembly defect (unknown program, bad image). *)
