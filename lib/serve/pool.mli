(** A persistent pool of worker domains fed by per-worker deques.

    The pool replaces the dispatcher's old spawn-one-domain-per-window
    execution: [workers] domains are spawned once at {!create}, live
    for the whole campaign, and are joined once at {!drain}.  Work is
    submitted to a per-worker deque (each deque has its own mutex —
    the stripes), a worker pops from the {e head} of its own deque,
    and — when stealing is on — an idle worker pops from the {e tail}
    of the first sibling deque with work.  A worker that finds every
    deque empty parks on a condition variable instead of spinning, so
    an idle fleet costs nothing.

    Each worker accumulates its results in a worker-local list —
    nothing is shared while serving — and {!drain} merges the local
    lists once, after every submitted item has completed and every
    domain has been joined.

    The pool is generic and knows nothing about determinism: the order
    of the list returned by {!drain} depends on host scheduling.
    Callers that need a deterministic product (the dispatcher) must
    key results by something request-borne and re-derive any
    order-sensitive state themselves — see {!Dispatcher} and
    docs/SCALING.md. *)

type ('a, 'b) t

val create :
  workers:int -> steal:bool -> exec:(int -> 'a -> 'b) -> unit -> ('a, 'b) t
(** [create ~workers ~steal ~exec ()] spawns [workers] long-lived
    domains.  Each submitted item ['a] is executed as [exec w item]
    where [w] is the index of the worker that ran it (its deque of
    origin when it was not stolen).  Raises [Invalid_argument] when
    [workers < 1].  [exec] must not raise for flow control; an
    exception from [exec] is caught, remembered, and re-raised by
    {!drain} after the pool has shut down cleanly. *)

val submit : ('a, 'b) t -> worker:int -> 'a -> unit
(** Queue an item on worker [worker]'s deque and wake the pool.
    Raises [Invalid_argument] when the worker index is out of range or
    the pool has already begun draining. *)

val drain : ('a, 'b) t -> 'b list
(** Wait for every submitted item to complete, stop and join every
    worker domain, and return the merged results (host order —
    unspecified).  Draining is idempotent: a second [drain] returns
    the memoized result without touching any domain.  Re-raises the
    first exception any [exec] call threw, if one did. *)

val live_workers : ('a, 'b) t -> int
(** Worker domains currently running their loop.  [workers] while the
    pool serves; 0 after {!drain} returns. *)

val executed : ('a, 'b) t -> int array
(** Per-worker count of items executed.  Stable only after {!drain};
    host-scheduling dependent, so for observability — never for the
    deterministic report. *)

val steals : ('a, 'b) t -> int array
(** Per-worker count of items stolen from a sibling's deque tail.
    Same caveats as {!executed}. *)
