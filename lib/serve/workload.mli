(** Seeded deterministic request generation for the serving fleet.

    The paper's rings exist so one machine can safely multiplex
    mutually suspicious users; a serving fleet multiplies that machine.
    A workload here is the stream such a fleet would face: each request
    names a program from the shard catalog ({!Shard.programs} — the
    same crossing/gate scenarios the benches and examples run) plus its
    argument (the iteration count), and carries an arrival stamp on a
    {e virtual} clock measured in modeled cycles.  Generation is a pure
    function of [(mix, seed, requests)]: the same triple yields the
    same stream on any host, which is the first link in the fleet's
    determinism contract (see docs/SCALING.md). *)

type request = {
  id : int;  (** Position in the stream, from 0. *)
  program : string;  (** Catalog program name ({!Shard.programs}). *)
  iterations : int;  (** The request's argument: units of service work. *)
  arrival : int;  (** Virtual arrival time, in modeled cycles. *)
}

type mix = {
  mix_name : string;
  entries : (string * int * int) list;
      (** [(program, iterations, weight)] — each request draws one
          entry with probability proportional to its weight. *)
  mean_gap : int;
      (** Mean virtual-cycle gap between consecutive arrivals; actual
          gaps are drawn uniformly from [1 .. 2*mean_gap]. *)
}

val standard_mix : mix
(** The default serving mix: hardware and 645 crossings, same-ring
    calls, an outward (upward) call, an argument-passing crossing and
    a demand-paged crossing, in bench-like proportions. *)

val mixes : (string * mix) list
(** Every named mix: [standard], [crossing] (ring-crossing flavours
    only), [uniform] (every program, equal weight). *)

val find_mix : string -> (mix, string) result
(** Look a mix up by name; the error lists the valid names. *)

val generate : mix:mix -> seed:int -> requests:int -> request list
(** [generate ~mix ~seed ~requests] is the deterministic request
    stream: an xorshift64* generator seeded with [seed] draws each
    request's program and the virtual gap to the next arrival.
    Arrivals are strictly increasing.  Raises [Invalid_argument] on a
    mix with no entries or nonpositive weights. *)

val classes : request list -> (string * int) list
(** The distinct [(program, iterations)] service classes a stream
    touches, sorted — what a shard will need boot images for. *)

val pp_request : Format.formatter -> request -> unit
