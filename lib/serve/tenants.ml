(* Seeded tenant-program generation for the multi-tenant arena, plus
   the domain-parallel campaign runner.

   A tenant population is a pure function of (profile, seed, count):
   the same xorshift64* stream that drives {!Workload} draws each
   tenant's kind and parameters, so two hosts — or two shard counts —
   build byte-identical populations.  The adversarial kinds are the
   attacks the paper's hardware checks are supposed to stop cold:

   - gate-squeeze:  downward call linked past the gate list;
   - ring-max:      a ring-4 caller hands a ring-1 service a pointer
                    to data only ring 1 may touch — the effective-ring
                    computation must bill the access to the caller;
   - stack-bracket: a store through a forged absolute ITS naming an
                    inner ring's stack segment;
   - cache-probe:   self-modifying code in a writable-executable
                    segment, hunting decoded-instruction-cache
                    desyncs;
   - quota-spin:    a tight loop that can only end by billing;
   - mem-hog:       a virtual memory larger than the memory quota,
                    refused at admission.

   Each succeeds only at getting itself contained or quarantined; the
   arena's auditors check nothing leaked in the process. *)

let mix_seed seed = (seed * 0x9e3779b9) lxor 0x2545f4914f6cdd1d lor 1

let next st =
  let x = !st in
  let x = x lxor (x lsl 13) in
  let x = x lxor (x lsr 7) in
  let x = x lxor (x lsl 17) in
  st := x;
  x land max_int

let acl_all access = [ { Os.Acl.user = Os.Acl.wildcard; access } ]

let proc ring = Rings.Access.procedure_segment ~execute_in:ring ~callable_from:ring ()

let compute_source ~spins =
  Printf.sprintf
    "start:  lda =%d\n\
     loop:   sba =1\n\
    \        tnz loop\n\
    \        mme =2\n"
    spins

let spinner_source = "start:  tra start\n"

let stack_bracket_source =
  "start:  lda =7\n\
  \        sta fwd,*          ; forged ITS into the ring-1 stack\n\
  \        mme =2\n\
   fwd:    .its 0, 1, 0\n"

let cache_probe_source ~rounds =
  Printf.sprintf
    "start:  lda =%d\n\
    \        sta cnt\n\
     loop:   lda jmpw\n\
    \        sta patch          ; write the next instruction...\n\
     patch:  .word 0            ; ...then immediately execute it\n\
     next:   lda cnt\n\
    \        sba =1\n\
    \        sta cnt\n\
    \        tnz loop\n\
    \        mme =2\n\
     jmpw:   tra next\n\
     cnt:    .word 0\n"
    rounds

let mem_hog_source ~words =
  Printf.sprintf "start:  mme =2\nbig:    .zero %d\n" words

(* Channel rounds: post a transfer, poll the status word for the done
   flag the completion sets, repeat — the chaos reader's shape, sized
   per tenant.  Runs in ring 0 because SIOT is privileged. *)
let io_heavy_source ~buf ~rounds =
  Printf.sprintf
    "start:  lda =%d\n\
    \        sta pr6|5          ; transfer rounds\n\
     round:  lda =0\n\
    \        sta st,*           ; clear the status word\n\
    \        siot ccw,*\n\
     wait:   lda st,*\n\
    \        tmi got            ; done flag set by the channel\n\
    \        tra wait\n\
     got:    lda pr6|5\n\
    \        sba =1\n\
    \        sta pr6|5\n\
    \        tnz round\n\
    \        mme =2\n\
     ccw:    .its 0, %s$rdccw\n\
     st:     .its 0, %s$rdst\n"
    rounds buf buf

let io_buf_source = "rdccw:  .its 0, data\nrdst:   .word 8\ndata:   .zero 8\n"

(* A data segment spanning three pages; each labeled word sits on its
   own page, so one sweep under demand paging takes three page
   faults (plus the code page's). *)
let paging_data_source =
  "p0:     .word 1\n\
  \        .zero 1023\n\
   p1:     .word 2\n\
  \        .zero 1023\n\
   p2:     .word 3\n"

let paging_heavy_source ~dat ~rounds =
  Printf.sprintf
    "start:  lda =%d\n\
    \        sta pr6|5          ; sweep rounds\n\
     loop:   lda w0,*\n\
    \        ada w1,*\n\
    \        ada w2,*\n\
    \        lda pr6|5\n\
    \        sba =1\n\
    \        sta pr6|5\n\
    \        tnz loop\n\
    \        mme =2\n\
     w0:     .its 0, %s$p0\n\
     w1:     .its 0, %s$p1\n\
     w2:     .its 0, %s$p2\n"
    rounds dat dat dat

let privileged_data_source = "word0:  .word 7\n"

(* One segment-name prefix per tenant keeps every wave's store free of
   collisions and makes billing lines self-identifying. *)
let tenant ?(paged = false) ~id ~kind ~adversarial ~ring ~start segments =
  {
    Os.Arena.id;
    name = Printf.sprintf "t%04d" id;
    kind;
    adversarial;
    ring;
    paged;
    start;
    segments;
  }

let make_tenant ~id ~kind st =
  let p = Printf.sprintf "t%04d" id in
  let main = p ^ "main" and svc = p ^ "svc" and dat = p ^ "dat" in
  match kind with
  | "compute" ->
      let spins = 20 + (next st mod 100) in
      tenant ~id ~kind ~adversarial:false ~ring:4 ~start:(main, "start")
        [ (main, acl_all (proc 4), compute_source ~spins) ]
  | "crossing" ->
      let iterations = 2 + (next st mod 8) in
      tenant ~id ~kind ~adversarial:false ~ring:4 ~start:(main, "start")
        [
          ( main,
            acl_all (proc 4),
            Os.Scenario.caller_source ~callee_link:(svc ^ "$entry")
              ~iterations () );
          ( svc,
            acl_all
              (Rings.Access.procedure_segment ~execute_in:1 ~callable_from:4
                 ()),
            Os.Scenario.callee_source () );
        ]
  | "gate-squeeze" ->
      (* Link straight at the implementation, past the gate list: the
         hardware must refuse the downward transfer. *)
      tenant ~id ~kind ~adversarial:true ~ring:4 ~start:(main, "start")
        [
          ( main,
            acl_all (proc 4),
            Os.Scenario.caller_source ~callee_link:(svc ^ "$impl")
              ~iterations:1 () );
          ( svc,
            acl_all
              (Rings.Access.procedure_segment ~execute_in:1 ~callable_from:4
                 ()),
            Os.Scenario.callee_source () );
        ]
  | "ring-max" ->
      (* The argument names data only ring 1 may read or write; the
         ring-1 service touches it through the caller's ITS, so the
         effective ring is the caller's and the access must fault. *)
      tenant ~id ~kind ~adversarial:true ~ring:4 ~start:(main, "start")
        [
          ( main,
            acl_all (proc 4),
            Os.Scenario.caller_source ~arg_symbol:(dat ^ "$word0")
              ~callee_link:(svc ^ "$entry") ~iterations:1 () );
          ( svc,
            acl_all
              (Rings.Access.procedure_segment ~execute_in:1 ~callable_from:4
                 ()),
            Os.Scenario.callee_source ~touch_argument:true () );
          ( dat,
            acl_all
              (Rings.Access.data_segment ~writable_to:1 ~readable_to:1 ()),
            privileged_data_source );
        ]
  | "stack-bracket" ->
      tenant ~id ~kind ~adversarial:true ~ring:4 ~start:(main, "start")
        [ (main, acl_all (proc 4), stack_bracket_source) ]
  | "cache-probe" ->
      let rounds = 4 + (next st mod 12) in
      tenant ~id ~kind ~adversarial:true ~ring:4 ~start:(main, "start")
        [
          ( main,
            acl_all
              (Rings.Access.v ~read:true ~write:true ~execute:true
                 (Rings.Brackets.v ~r1:(Rings.Ring.v 4)
                    ~r2:(Rings.Ring.v 4) ~r3:(Rings.Ring.v 4))),
            cache_probe_source ~rounds );
        ]
  | "quota-spin" ->
      tenant ~id ~kind ~adversarial:true ~ring:4 ~start:(main, "start")
        [ (main, acl_all (proc 4), spinner_source) ]
  | "mem-hog" ->
      tenant ~id ~kind ~adversarial:true ~ring:4 ~start:(main, "start")
        [ (main, acl_all (proc 4), mem_hog_source ~words:8192) ]
  | "io-heavy" ->
      (* Honest channel traffic: keeps a transfer in flight most of
         the time, so injected channel errors and stalls land on this
         tenant's completions rather than only on the chaos reader. *)
      let rounds = 4 + (next st mod 8) in
      tenant ~id ~kind ~adversarial:false ~ring:0 ~start:(main, "start")
        [
          (main, acl_all (proc 0), io_heavy_source ~buf:dat ~rounds);
          ( dat,
            acl_all
              (Rings.Access.data_segment ~writable_to:0 ~readable_to:4 ()),
            io_buf_source );
        ]
  | "paging-heavy" ->
      (* Honest but memory-sprawling: demand-paged, sweeping a
         three-page data segment so its slices are dominated by page
         faults and frame traffic. *)
      let rounds = 2 + (next st mod 6) in
      tenant ~paged:true ~id ~kind ~adversarial:false ~ring:4
        ~start:(main, "start")
        [
          (main, acl_all (proc 4), paging_heavy_source ~dat ~rounds);
          ( dat,
            acl_all
              (Rings.Access.data_segment ~writable_to:4 ~readable_to:4 ()),
            paging_data_source );
        ]
  | k -> invalid_arg ("Tenants.make_tenant: unknown kind " ^ k)

(* (kind, weight) — the standard population is mostly honest, with a
   steady trickle of every attack. *)
let standard_kinds =
  [
    ("compute", 24);
    ("crossing", 19);
    ("io-heavy", 6);
    ("paging-heavy", 6);
    ("gate-squeeze", 9);
    ("ring-max", 9);
    ("stack-bracket", 9);
    ("cache-probe", 6);
    ("quota-spin", 9);
    ("mem-hog", 3);
  ]

let cooperative_kinds = [ ("compute", 55); ("crossing", 45) ]
let profiles = [ "standard"; "cooperative" ]

let kinds_of_profile = function
  | "standard" -> Ok standard_kinds
  | "cooperative" -> Ok cooperative_kinds
  | p ->
      Error
        (Printf.sprintf "unknown profile %s (expected %s)" p
           (String.concat " or " profiles))

let generate ?(profile = "standard") ~seed ~tenants () =
  let kinds =
    match kinds_of_profile profile with
    | Ok k -> k
    | Error e -> invalid_arg ("Tenants.generate: " ^ e)
  in
  if tenants <= 0 then invalid_arg "Tenants.generate: tenants must be > 0";
  let total = List.fold_left (fun acc (_, w) -> acc + w) 0 kinds in
  let st = ref (mix_seed seed) in
  let draw () =
    let r = next st mod total in
    let rec pick acc = function
      | [ (k, _) ] -> k
      | (k, w) :: rest -> if r < acc + w then k else pick (acc + w) rest
      | [] -> assert false
    in
    pick 0 kinds
  in
  let population =
    List.init tenants (fun id -> make_tenant ~id ~kind:(draw ()) st)
  in
  (* The acceptance gate wants at least one quarantine per standard
     campaign; guarantee it deterministically by drafting the last
     tenant as a spinner when the draw produced none. *)
  if
    profile = "standard"
    && not
         (List.exists
            (fun (t : Os.Arena.tenant) -> t.Os.Arena.kind = "quota-spin")
            population)
  then
    List.mapi
      (fun i t ->
        if i = tenants - 1 then
          make_tenant ~id:t.Os.Arena.id ~kind:"quota-spin" st
        else t)
      population
  else population

(* {1 The arena over shards}

   Waves are self-contained (own store, machine, injector), so the
   fleet treatment is embarrassingly parallel: deal wave indices
   round-robin to [shards] domains, run, and merge by wave index.
   {!Os.Arena.assemble} sorts, so the report is byte-identical to the
   sequential run — the same determinism contract the serving fleet
   keeps (docs/SCALING.md). *)

let run_sharded ?mode ?quantum ?inject ?(quota = Os.Arena.default_quota)
    ~shards ~seed tenants =
  if shards <= 0 then invalid_arg "Tenants.run_sharded: shards must be > 0";
  let waves = Os.Arena.waves tenants in
  let results =
    if shards = 1 then
      List.map
        (fun (wave, ts) ->
          Os.Arena.run_wave ?mode ?quantum ?inject ~quota ~wave ts)
        waves
    else
      List.init shards (fun d ->
          Domain.spawn (fun () ->
              List.filter_map
                (fun (wave, ts) ->
                  if wave mod shards = d then
                    Some
                      (Os.Arena.run_wave ?mode ?quantum ?inject ~quota ~wave
                         ts)
                  else None)
                waves))
      |> List.concat_map Domain.join
  in
  Os.Arena.assemble ~seed ~quota results
