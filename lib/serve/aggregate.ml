(* Fleet-wide metric merging.  The merges are the commutative
   operations the trace layer exports (Counters.add, Histogram.merge)
   plus pointwise ring sums, folded over outcomes in request-id order
   — a canonical order, so the report is byte-stable however the
   shards interleaved. *)

type shard_summary = {
  shard_id : int;
  served : int;
  shard_ok : int;
  cold_boots : int;
  warm_boots : int;
  busy_cycles : int;
  image_stats : Hw.Assoc.stats;
  shard_quarantined : bool;
  shard_latency : Trace.Histogram.t;
}

type fleet_trace = {
  tr_requests : int;
  tr_events : int;
  tr_spans : int;
  tr_seen : int;
  tr_dropped : int;
  tr_sampled_out : int;
  tr_spans_sampled_out : int;
}

type fleet = {
  completed : int;
  ok : int;
  exits : (string * int) list;
  per_class : ((string * int) * int) list;
  latency : Trace.Histogram.t;
  counters : Trace.Counters.snapshot option;
  rings : (int * int * int) list;
  kernel_cycles : int;
  trace : fleet_trace option;
}

type t = {
  fleet : fleet;
  shards : shard_summary array;
  dispatch : Dispatcher.stats;
}

let bump assoc key n =
  match List.assoc_opt key assoc with
  | None -> (key, n) :: assoc
  | Some v -> (key, v + n) :: List.remove_assoc key assoc

let merge_rings acc rings =
  List.fold_left
    (fun acc (r, c, i) ->
      match List.assoc_opt r acc with
      | None -> (r, (c, i)) :: acc
      | Some (c0, i0) -> (r, (c0 + c, i0 + i)) :: List.remove_assoc r acc)
    acc rings

let build models outcomes dispatch =
  let latency = Trace.Histogram.create () in
  let exits = ref [] and per_class = ref [] and rings = ref [] in
  let counters = ref None and kernel = ref 0 and ok = ref 0 in
  let trace = ref None in
  List.iter
    (fun (o : Shard.outcome) ->
      Trace.Histogram.observe latency o.Shard.latency;
      if o.Shard.ok then incr ok;
      exits := bump !exits o.Shard.exit_label 1;
      per_class :=
        bump !per_class
          (o.Shard.request.Workload.program, o.Shard.request.Workload.iterations)
          1;
      rings := merge_rings !rings o.Shard.ring_cycles;
      kernel := !kernel + o.Shard.kernel_cycles;
      (match o.Shard.trace with
      | None -> ()
      | Some rt ->
          let acc =
            match !trace with
            | Some acc -> acc
            | None ->
                {
                  tr_requests = 0;
                  tr_events = 0;
                  tr_spans = 0;
                  tr_seen = 0;
                  tr_dropped = 0;
                  tr_sampled_out = 0;
                  tr_spans_sampled_out = 0;
                }
          in
          trace :=
            Some
              {
                tr_requests = acc.tr_requests + 1;
                tr_events = acc.tr_events + List.length rt.Shard.t_events;
                tr_spans = acc.tr_spans + List.length rt.Shard.t_spans;
                tr_seen = acc.tr_seen + rt.Shard.t_seen;
                tr_dropped = acc.tr_dropped + rt.Shard.t_dropped;
                tr_sampled_out = acc.tr_sampled_out + rt.Shard.t_sampled_out;
                tr_spans_sampled_out =
                  acc.tr_spans_sampled_out + rt.Shard.t_spans_sampled_out;
              });
      counters :=
        Some
          (match !counters with
          | None -> o.Shard.delta
          | Some c -> Trace.Counters.add c o.Shard.delta))
    outcomes;
  let fleet =
    {
      completed = List.length outcomes;
      ok = !ok;
      exits = List.sort compare !exits;
      per_class = List.sort compare !per_class;
      latency;
      counters = !counters;
      rings =
        List.sort compare (List.map (fun (r, (c, i)) -> (r, c, i)) !rings);
      kernel_cycles = !kernel;
      trace = !trace;
    }
  in
  let summaries =
    Array.map
      (fun (m : Dispatcher.shard_model) ->
        let h = Trace.Histogram.create () in
        let served_ok = ref 0 in
        List.iter
          (fun (o : Shard.outcome) ->
            if o.Shard.shard_id = m.Dispatcher.ms_id then begin
              Trace.Histogram.observe h o.Shard.latency;
              if o.Shard.ok then incr served_ok
            end)
          outcomes;
        {
          shard_id = m.Dispatcher.ms_id;
          served = m.Dispatcher.ms_served;
          shard_ok = !served_ok;
          cold_boots = m.Dispatcher.ms_cold;
          warm_boots = m.Dispatcher.ms_warm;
          busy_cycles = m.Dispatcher.ms_busy;
          image_stats = m.Dispatcher.ms_image;
          shard_quarantined = m.Dispatcher.ms_quarantined;
          shard_latency = h;
        })
      models
  in
  { fleet; shards = summaries; dispatch }

(* The merged Chrome trace: one "process" per traced request, pid =
   request id.  [outcomes] arrive sorted by request id and a request's
   trace is placement-independent, so the document is byte-stable
   across shard counts, pool sizes and steal settings. *)
let chrome_trace outcomes =
  Trace.Export.chrome_trace_fleet
    (List.filter_map
       (fun (o : Shard.outcome) ->
         match o.Shard.trace with
         | None -> None
         | Some rt ->
             Some
               ( o.Shard.request.Workload.id,
                 Printf.sprintf "req %d %s/%d" o.Shard.request.Workload.id
                   o.Shard.request.Workload.program
                   o.Shard.request.Workload.iterations,
                 rt.Shard.t_events,
                 rt.Shard.t_spans ))
       outcomes)

let requests_per_modeled_sec t =
  if t.dispatch.Dispatcher.makespan <= 0 then 0.0
  else
    float_of_int t.fleet.completed
    *. 1_000_000.0
    /. float_of_int t.dispatch.Dispatcher.makespan

(* ------------------------------------------------------------------ *)
(* JSON *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 32 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let histogram_json b h =
  Buffer.add_string b
    (Printf.sprintf
       "{\"count\": %d, \"sum\": %d, \"min\": %d, \"max\": %d, \"mean\": %.2f, \
        \"p50\": %d, \"p90\": %d, \"p99\": %d, \"buckets\": ["
       (Trace.Histogram.count h) (Trace.Histogram.sum h)
       (Trace.Histogram.min_value h)
       (Trace.Histogram.max_value h)
       (Trace.Histogram.mean h)
       (Trace.Histogram.percentile h 50.0)
       (Trace.Histogram.percentile h 90.0)
       (Trace.Histogram.percentile h 99.0));
  List.iteri
    (fun i (lo, hi, n) ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b
        (Printf.sprintf "{\"lo\": %d, \"hi\": %d, \"n\": %d}" lo hi n))
    (Trace.Histogram.nonempty_buckets h);
  Buffer.add_string b "]}"

let counters_json b = function
  | None -> Buffer.add_string b "null"
  | Some snap ->
      Buffer.add_string b "{";
      List.iteri
        (fun i (name, v) ->
          if i > 0 then Buffer.add_string b ", ";
          Buffer.add_string b (Printf.sprintf "\"%s\": %d" name v))
        (Trace.Counters.fields snap);
      Buffer.add_string b "}"

let report_json ?(config = []) t =
  let b = Buffer.create 4096 in
  let add = Buffer.add_string b in
  add "{\n  \"config\": {";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then add ", ";
      add (Printf.sprintf "\"%s\": %s" (json_escape k) v))
    config;
  add "},\n";
  (* The fleet section is a function of the outcome set alone: nothing
     here may mention shard ids, shard counts or placement, or the
     2-shard/4-shard smoke diff breaks. *)
  add "  \"fleet\": {\n";
  add
    (Printf.sprintf "    \"completed\": %d,\n    \"ok\": %d,\n"
       t.fleet.completed t.fleet.ok);
  add "    \"exits\": {";
  List.iteri
    (fun i (label, n) ->
      if i > 0 then add ", ";
      add (Printf.sprintf "\"%s\": %d" (json_escape label) n))
    t.fleet.exits;
  add "},\n    \"per_class\": {";
  List.iteri
    (fun i ((p, iters), n) ->
      if i > 0 then add ", ";
      add (Printf.sprintf "\"%s/%d\": %d" (json_escape p) iters n))
    t.fleet.per_class;
  add "},\n    \"latency_cycles\": ";
  histogram_json b t.fleet.latency;
  add ",\n    \"rings\": [";
  List.iteri
    (fun i (r, c, insns) ->
      if i > 0 then add ", ";
      add
        (Printf.sprintf
           "{\"ring\": %d, \"cycles\": %d, \"instructions\": %d}" r c insns))
    t.fleet.rings;
  add (Printf.sprintf "],\n    \"kernel_cycles\": %d,\n" t.fleet.kernel_cycles);
  add "    \"counters\": ";
  counters_json b t.fleet.counters;
  add ",\n    \"trace\": ";
  (match t.fleet.trace with
  | None -> add "null"
  | Some tr ->
      add
        (Printf.sprintf
           "{\"requests\": %d, \"events\": %d, \"spans\": %d, \"seen\": %d, \
            \"dropped\": %d, \"sampled_out\": %d, \"spans_sampled_out\": %d}"
           tr.tr_requests tr.tr_events tr.tr_spans tr.tr_seen tr.tr_dropped
           tr.tr_sampled_out tr.tr_spans_sampled_out));
  add "\n  },\n";
  add "  \"dispatch\": {\n";
  add
    (Printf.sprintf
       "    \"completed\": %d,\n\
       \    \"shed\": %d,\n\
       \    \"redistributed\": %d,\n\
       \    \"routed_hash\": %d,\n\
       \    \"routed_balanced\": %d,\n\
       \    \"batches\": %d,\n\
       \    \"makespan_cycles\": %d,\n\
       \    \"quarantined_shards\": %d,\n\
       \    \"migrated\": %d,\n\
       \    \"restarts\": %d,\n\
       \    \"peak_active\": %d,\n\
       \    \"requests_per_modeled_sec\": %.2f\n"
       t.dispatch.Dispatcher.completed t.dispatch.Dispatcher.shed
       t.dispatch.Dispatcher.redistributed t.dispatch.Dispatcher.routed_hash
       t.dispatch.Dispatcher.routed_balanced t.dispatch.Dispatcher.batches
       t.dispatch.Dispatcher.makespan t.dispatch.Dispatcher.quarantined
       t.dispatch.Dispatcher.migrated t.dispatch.Dispatcher.restarts
       t.dispatch.Dispatcher.peak_active
       (requests_per_modeled_sec t));
  add "  },\n";
  add "  \"shards\": [\n";
  Array.iteri
    (fun i s ->
      if i > 0 then add ",\n";
      add
        (Printf.sprintf
           "    {\"id\": %d, \"served\": %d, \"ok\": %d, \"cold_boots\": %d, \
            \"warm_boots\": %d, \"busy_cycles\": %d, \"quarantined\": %b, \
            \"image_cache\": {\"hits\": %d, \"misses\": %d, \"evictions\": \
            %d, \"invalidations\": %d}, \"latency_cycles\": "
           s.shard_id s.served s.shard_ok s.cold_boots s.warm_boots
           s.busy_cycles s.shard_quarantined s.image_stats.Hw.Assoc.hits
           s.image_stats.Hw.Assoc.misses s.image_stats.Hw.Assoc.evictions
           s.image_stats.Hw.Assoc.invalidations);
      histogram_json b s.shard_latency;
      add "}")
    t.shards;
  add "\n  ]\n}\n";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Human summary *)

let pp ppf t =
  let f = t.fleet and d = t.dispatch in
  Format.fprintf ppf "@[<v>serving fleet: %d shard%s, %d window%s@,"
    (Array.length t.shards)
    (if Array.length t.shards = 1 then "" else "s")
    d.Dispatcher.batches
    (if d.Dispatcher.batches = 1 then "" else "s");
  Format.fprintf ppf
    "requests: %d completed (%d ok), %d shed, %d redistributed@," f.completed
    f.ok d.Dispatcher.shed d.Dispatcher.redistributed;
  Format.fprintf ppf
    "routing: %d by hash, %d rebalanced; %d shard%s quarantined@,"
    d.Dispatcher.routed_hash d.Dispatcher.routed_balanced
    d.Dispatcher.quarantined
    (if d.Dispatcher.quarantined = 1 then "" else "s");
  if d.Dispatcher.migrated > 0 || d.Dispatcher.restarts > 0 then
    Format.fprintf ppf
      "elastic: %d request%s migrated, %d rolling restart%s@,"
      d.Dispatcher.migrated
      (if d.Dispatcher.migrated = 1 then "" else "s")
      d.Dispatcher.restarts
      (if d.Dispatcher.restarts = 1 then "" else "s");
  Format.fprintf ppf
    "latency (modeled cycles): p50 %d  p90 %d  p99 %d  max %d@,"
    (Trace.Histogram.percentile f.latency 50.0)
    (Trace.Histogram.percentile f.latency 90.0)
    (Trace.Histogram.percentile f.latency 99.0)
    (Trace.Histogram.max_value f.latency);
  Format.fprintf ppf "makespan: %d cycles, %.2f requests/modeled-second@,"
    d.Dispatcher.makespan
    (requests_per_modeled_sec t);
  (match f.trace with
  | None -> ()
  | Some tr ->
      Format.fprintf ppf
        "trace: %d request%s, %d events / %d spans kept (%d seen, %d \
         dropped, %d sampled out)@,"
        tr.tr_requests
        (if tr.tr_requests = 1 then "" else "s")
        tr.tr_events tr.tr_spans tr.tr_seen tr.tr_dropped tr.tr_sampled_out);
  Array.iter
    (fun s ->
      Format.fprintf ppf
        "  shard %d: served %d (%d ok), %d cold / %d warm boots, busy %d%s@,"
        s.shard_id s.served s.shard_ok s.cold_boots s.warm_boots s.busy_cycles
        (if s.shard_quarantined then "  [quarantined]" else ""))
    t.shards;
  Format.fprintf ppf "@]"
