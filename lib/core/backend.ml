(* The per-access protection decision, factored out of the machine so
   the three protection implementations are one dispatch away from
   each other.

   [Hardware] and [Software_645] reproduce, verbatim, the logic the
   machine used to inline: the hardware checks brackets and flags
   through {!Policy}; the 645 baseline checks only the flags of the
   per-ring descriptor segment the kernel built (the brackets were
   already applied when that descriptor segment was filtered).

   [Capability] accepts and refuses exactly the references the
   hardware does — the per-segment capability is derived from the same
   SDW access field, its permission mask at a given domain is the
   bracket predicate — but reports refusals in capability vocabulary
   via {!cap_fault_of}.  That alignment is what makes the three-way
   verdict-parity suite (test_equivalence.ml) and the crossing-latency
   comparison meaningful: the backends differ in mechanism and cost,
   never in which programs they admit. *)

type t = Hardware | Software_645 | Capability

let to_string = function
  | Hardware -> "hw"
  | Software_645 -> "645"
  | Capability -> "cap"

let of_string = function
  | "hw" -> Ok Hardware
  | "645" | "sw" -> Ok Software_645
  | "cap" -> Ok Capability
  | s -> Error (Printf.sprintf "unknown backend %s (use hw, 645 or cap)" s)

let all = [ Hardware; Software_645; Capability ]

(* The documented hardware-fault -> capability-fault mapping.  Total
   and idempotent: faults with no capability reading (upward calls,
   missing segments, bounds) pass through, and cap faults map to
   themselves. *)
let cap_fault_of = function
  | Fault.No_read_permission ->
      Fault.Cap_load_violation { effective = Ring.r0 }
  | Fault.Read_bracket_violation { effective; _ } ->
      Fault.Cap_load_violation { effective }
  | Fault.No_write_permission ->
      Fault.Cap_store_violation { effective = Ring.r0 }
  | Fault.Write_bracket_violation { effective; _ } ->
      Fault.Cap_store_violation { effective }
  | Fault.No_execute_permission -> Fault.Cap_exec_violation { ring = Ring.r0 }
  | Fault.Execute_bracket_violation { ring; _ } ->
      Fault.Cap_exec_violation { ring }
  | Fault.Gate_violation { wordno; gates } ->
      Fault.Cap_seal_violation { wordno; gates }
  | Fault.Outside_gate_extension { effective; top } ->
      Fault.Cap_attenuation_violation { effective; limit = top }
  | Fault.Effective_ring_raised { exec; effective } ->
      Fault.Cap_attenuation_violation { effective; limit = exec }
  | Fault.Transfer_ring_change { exec; effective } ->
      Fault.Cap_attenuation_violation { effective; limit = exec }
  | f -> f

let map_cap = function Ok () -> Ok () | Error f -> Error (cap_fault_of f)

let[@inline] validate_fetch t (a : Access.t) ~ring =
  match t with
  | Hardware -> Policy.validate_fetch a ~ring
  | Software_645 ->
      if a.execute then Ok () else Error Fault.No_execute_permission
  | Capability -> (
      match Policy.validate_fetch a ~ring with
      | Ok () -> Ok ()
      | Error _ -> Error (Fault.Cap_exec_violation { ring }))

let[@inline] validate_read t (a : Access.t) ~effective =
  match t with
  | Hardware -> Policy.validate_read a ~effective
  | Software_645 ->
      if a.read then Ok () else Error Fault.No_read_permission
  | Capability -> (
      match Policy.validate_read a ~effective with
      | Ok () -> Ok ()
      | Error _ ->
          Error
            (Fault.Cap_load_violation
               { effective = Effective_ring.ring effective }))

let[@inline] validate_write t (a : Access.t) ~effective =
  match t with
  | Hardware -> Policy.validate_write a ~effective
  | Software_645 ->
      if a.write then Ok () else Error Fault.No_write_permission
  | Capability -> (
      match Policy.validate_write a ~effective with
      | Ok () -> Ok ()
      | Error _ ->
          Error
            (Fault.Cap_store_violation
               { effective = Effective_ring.ring effective }))

(* Ordinary transfers.  The 645 arm is what {!Isa.Exec} used to
   inline: flags only, the gatekeeper sees ring changes later as
   {!Fault.Cross_ring_transfer} (raised by the caller, not here). *)
let[@inline] validate_transfer t (a : Access.t) ~exec ~effective =
  match t with
  | Hardware -> Policy.validate_transfer a ~exec ~effective
  | Software_645 ->
      if a.execute then Ok () else Error Fault.No_execute_permission
  | Capability -> map_cap (Policy.validate_transfer a ~exec ~effective)
