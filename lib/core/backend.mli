(** The protection backend: one per-access decision procedure per ring
    implementation.

    The machine ({!Isa.Machine}) routes every fetch/read/write/transfer
    validation through this dispatch instead of matching on its mode
    inline.  [Hardware] and [Software_645] are the decision procedures
    the machine always had, moved verbatim — their verdicts, faults and
    modeled costs are byte-identical to the pre-refactor machine.
    [Capability] is the tagged-capability reading of the same layout:
    it admits exactly the references the hardware admits (the
    permission mask a domain holds on a segment is, by construction,
    the bracket predicate at that ring) but refuses in capability
    vocabulary — {!Fault.Cap_load_violation} instead of a read-bracket
    breach, {!Fault.Cap_seal_violation} instead of a gate violation,
    {!Fault.Cap_attenuation_violation} instead of a raised effective
    ring.  See docs/CAPABILITIES.md for the model. *)

type t = Hardware | Software_645 | Capability

val to_string : t -> string
(** ["hw"], ["645"], ["cap"] — the CLI / bench / report vocabulary. *)

val of_string : string -> (t, string) result
(** Accepts ["hw"], ["645"] (alias ["sw"]) and ["cap"]; anything else
    is an error naming the accepted values. *)

val all : t list
(** The three backends, in comparison-table order: hw, 645, cap. *)

val cap_fault_of : Fault.t -> Fault.t
(** The documented mapping from a hardware-vocabulary refusal to its
    capability-vocabulary equivalent: permission/bracket faults become
    load/store/exec capability violations, gate faults become sealed-
    entry violations, raised-effective-ring and ring-changing-transfer
    faults become attenuation violations.  Total and idempotent;
    faults with no capability reading (upward call, missing segment,
    bound violation, ...) pass through unchanged.  The verdict-parity
    suite uses this to predict the capability backend's fault from the
    hardware's. *)

val validate_fetch : t -> Access.t -> ring:Ring.t -> (unit, Fault.t) result
val validate_read :
  t -> Access.t -> effective:Effective_ring.t -> (unit, Fault.t) result
val validate_write :
  t -> Access.t -> effective:Effective_ring.t -> (unit, Fault.t) result
val validate_transfer :
  t -> Access.t -> exec:Ring.t -> effective:Effective_ring.t ->
  (unit, Fault.t) result
