type t =
  | No_read_permission
  | No_write_permission
  | No_execute_permission
  | Read_bracket_violation of { effective : Ring.t; top : Ring.t }
  | Write_bracket_violation of { effective : Ring.t; top : Ring.t }
  | Execute_bracket_violation of {
      ring : Ring.t;
      bottom : Ring.t;
      top : Ring.t;
    }
  | Gate_violation of { wordno : int; gates : int }
  | Outside_gate_extension of { effective : Ring.t; top : Ring.t }
  | Upward_call of {
      from_ring : Ring.t;
      to_ring : Ring.t;
      segno : int;
      wordno : int;
    }
  | Effective_ring_raised of { exec : Ring.t; effective : Ring.t }
  | Downward_return of { from_ring : Ring.t; to_ring : Ring.t }
  | Transfer_ring_change of { exec : Ring.t; effective : Ring.t }
  | Privileged_instruction of { ring : Ring.t }
  | Missing_segment of { segno : int }
  | Missing_page of { segno : int; pageno : int }
  | Bound_violation of { segno : int; wordno : int; bound : int }
  | Illegal_opcode of { word : int }
  | Cross_ring_transfer of { segno : int; wordno : int }
  | Halt_in_slave_ring of { ring : Ring.t }
  | Divide_by_zero
  | Service_call of { code : int }
  | Timer_runout
  | Io_completion
  | Parity_error of { addr : int }
  | Io_error
  | Watchdog_timeout of { budget : int }
  | Quota_exhausted of { resource : string; limit : int }
  | Cap_load_violation of { effective : Ring.t }
  | Cap_store_violation of { effective : Ring.t }
  | Cap_exec_violation of { ring : Ring.t }
  | Cap_seal_violation of { wordno : int; gates : int }
  | Cap_attenuation_violation of { effective : Ring.t; limit : Ring.t }
  | Cap_tag_violation of { addr : int; segno : int }

let code = function
  | No_read_permission -> 0
  | No_write_permission -> 1
  | No_execute_permission -> 2
  | Read_bracket_violation _ -> 3
  | Write_bracket_violation _ -> 4
  | Execute_bracket_violation _ -> 5
  | Gate_violation _ -> 6
  | Outside_gate_extension _ -> 7
  | Upward_call _ -> 8
  | Effective_ring_raised _ -> 9
  | Downward_return _ -> 10
  | Transfer_ring_change _ -> 11
  | Privileged_instruction _ -> 12
  | Missing_segment _ -> 13
  | Missing_page _ -> 14
  | Bound_violation _ -> 15
  | Illegal_opcode _ -> 16
  | Cross_ring_transfer _ -> 17
  | Halt_in_slave_ring _ -> 18
  | Divide_by_zero -> 19
  | Service_call _ -> 20
  | Timer_runout -> 21
  | Io_completion -> 22
  | Parity_error _ -> 23
  | Io_error -> 24
  | Watchdog_timeout _ -> 25
  | Quota_exhausted _ -> 26
  | Cap_load_violation _ -> 27
  | Cap_store_violation _ -> 28
  | Cap_exec_violation _ -> 29
  | Cap_seal_violation _ -> 30
  | Cap_attenuation_violation _ -> 31
  | Cap_tag_violation _ -> 32

let is_access_violation = function
  | Upward_call _ | Downward_return _ | Missing_segment _ | Missing_page _
  | Cross_ring_transfer _ | Service_call _ | Timer_runout | Io_completion
  | Parity_error _ | Io_error | Watchdog_timeout _ | Quota_exhausted _
  | Cap_tag_violation _ ->
      false
  | No_read_permission | No_write_permission | No_execute_permission
  | Read_bracket_violation _ | Write_bracket_violation _
  | Execute_bracket_violation _ | Gate_violation _
  | Outside_gate_extension _ | Effective_ring_raised _
  | Transfer_ring_change _ | Privileged_instruction _ | Bound_violation _
  | Illegal_opcode _ | Halt_in_slave_ring _ | Divide_by_zero
  | Cap_load_violation _ | Cap_store_violation _ | Cap_exec_violation _
  | Cap_seal_violation _ | Cap_attenuation_violation _ ->
      true

let equal (a : t) (b : t) = a = b

let pp ppf = function
  | No_read_permission -> Format.fprintf ppf "no read permission"
  | No_write_permission -> Format.fprintf ppf "no write permission"
  | No_execute_permission -> Format.fprintf ppf "no execute permission"
  | Read_bracket_violation { effective; top } ->
      Format.fprintf ppf "read bracket violation: %a above top %a" Ring.pp
        effective Ring.pp top
  | Write_bracket_violation { effective; top } ->
      Format.fprintf ppf "write bracket violation: %a above top %a" Ring.pp
        effective Ring.pp top
  | Execute_bracket_violation { ring; bottom; top } ->
      Format.fprintf ppf
        "execute bracket violation: %a outside [%a, %a]" Ring.pp ring Ring.pp
        bottom Ring.pp top
  | Gate_violation { wordno; gates } ->
      Format.fprintf ppf "gate violation: word %d not among %d gates" wordno
        gates
  | Outside_gate_extension { effective; top } ->
      Format.fprintf ppf "outside gate extension: %a above top %a" Ring.pp
        effective Ring.pp top
  | Upward_call { from_ring; to_ring; segno; wordno } ->
      Format.fprintf ppf
        "upward call %a -> %a at %d|%06o (software intervention)" Ring.pp
        from_ring Ring.pp to_ring segno wordno
  | Effective_ring_raised { exec; effective } ->
      Format.fprintf ppf
        "call with effective ring %a above ring of execution %a" Ring.pp
        effective Ring.pp exec
  | Downward_return { from_ring; to_ring } ->
      Format.fprintf ppf "downward return %a -> %a (software intervention)"
        Ring.pp from_ring Ring.pp to_ring
  | Transfer_ring_change { exec; effective } ->
      Format.fprintf ppf
        "transfer would change ring: executing %a, effective %a" Ring.pp exec
        Ring.pp effective
  | Privileged_instruction { ring } ->
      Format.fprintf ppf "privileged instruction in %a" Ring.pp ring
  | Missing_segment { segno } ->
      Format.fprintf ppf "missing segment %d" segno
  | Missing_page { segno; pageno } ->
      Format.fprintf ppf "missing page %d of segment %d" pageno segno
  | Bound_violation { segno; wordno; bound } ->
      Format.fprintf ppf "bound violation: %d|%06o beyond bound %d" segno
        wordno bound
  | Illegal_opcode { word } ->
      Format.fprintf ppf "illegal opcode in word %012o" word
  | Cross_ring_transfer { segno; wordno } ->
      Format.fprintf ppf "cross-ring transfer to %d|%06o (645 gatekeeper)"
        segno wordno
  | Halt_in_slave_ring { ring } ->
      Format.fprintf ppf "HALT attempted in %a" Ring.pp ring
  | Divide_by_zero -> Format.fprintf ppf "divide by zero"
  | Service_call { code } -> Format.fprintf ppf "service call %d" code
  | Timer_runout -> Format.fprintf ppf "timer runout"
  | Io_completion -> Format.fprintf ppf "I/O completion"
  | Parity_error { addr } ->
      Format.fprintf ppf "parity error at absolute %08o" addr
  | Io_error -> Format.fprintf ppf "I/O channel error"
  | Watchdog_timeout { budget } ->
      Format.fprintf ppf "watchdog timeout: no progress in %d instructions"
        budget
  | Quota_exhausted { resource; limit } ->
      Format.fprintf ppf "quota exhausted: %s limit %d reached" resource limit
  | Cap_load_violation { effective } ->
      Format.fprintf ppf "capability load violation at effective %a" Ring.pp
        effective
  | Cap_store_violation { effective } ->
      Format.fprintf ppf "capability store violation at effective %a" Ring.pp
        effective
  | Cap_exec_violation { ring } ->
      Format.fprintf ppf "capability execute violation in %a" Ring.pp ring
  | Cap_seal_violation { wordno; gates } ->
      Format.fprintf ppf
        "sealed-entry violation: word %d not among %d entry capabilities"
        wordno gates
  | Cap_attenuation_violation { effective; limit } ->
      Format.fprintf ppf
        "capability attenuation violation: effective %a exceeds limit %a"
        Ring.pp effective Ring.pp limit
  | Cap_tag_violation { addr; segno } ->
      Format.fprintf ppf
        "capability tag violation: untagged word at absolute %08o (segment \
         %d descriptor)"
        addr segno

let to_string t = Format.asprintf "%a" pp t
