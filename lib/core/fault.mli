(** Fault taxonomy.

    Every condition in Figs. 4–9 that "generates a trap, derailing the
    instruction cycle" is one constructor here, together with the
    substrate conditions (missing segment, bound violation) that the
    paper mentions in passing.  A fault either denotes an {e access
    violation} — the reference is illegal and the program is in error —
    or a condition requiring {e software intervention} on behalf of a
    legal program (upward call, downward return, missing segment). *)

type t =
  (* Flag off in the SDW: the capability is in no ring of the process. *)
  | No_read_permission
  | No_write_permission
  | No_execute_permission
  (* Effective ring outside the corresponding bracket. *)
  | Read_bracket_violation of { effective : Ring.t; top : Ring.t }
  | Write_bracket_violation of { effective : Ring.t; top : Ring.t }
  | Execute_bracket_violation of {
      ring : Ring.t;
      bottom : Ring.t;
      top : Ring.t;
    }
  (* CALL-specific conditions (Fig. 8). *)
  | Gate_violation of { wordno : int; gates : int }
      (** CALL target is not one of the first [gates] words. *)
  | Outside_gate_extension of { effective : Ring.t; top : Ring.t }
      (** Caller's effective ring is above the gate extension. *)
  | Upward_call of {
      from_ring : Ring.t;
      to_ring : Ring.t;
      segno : int;
      wordno : int;
    }
      (** Legal but requires software intervention: the target's
          execute bracket lies wholly above the caller's ring.  The
          target's two-part address is carried for the gatekeeper. *)
  | Effective_ring_raised of { exec : Ring.t; effective : Ring.t }
      (** A call that appears same-ring or downward with respect to
          TPR.RING but upward with respect to IPR.RING — the paper
          deems this an error and generates an access violation. *)
  (* RETURN-specific (Fig. 9). *)
  | Downward_return of { from_ring : Ring.t; to_ring : Ring.t }
  (* Ordinary transfers (Fig. 7). *)
  | Transfer_ring_change of { exec : Ring.t; effective : Ring.t }
      (** All transfer instructions except CALL and RETURN are
          constrained from changing the ring of execution. *)
  (* Privileged instructions execute only in ring 0. *)
  | Privileged_instruction of { ring : Ring.t }
  (* Substrate conditions. *)
  | Missing_segment of { segno : int }
  | Missing_page of { segno : int; pageno : int }
      (** Demand paging: the page table word is not present; the
          supervisor brings the page in and resumes the instruction. *)
  | Bound_violation of { segno : int; wordno : int; bound : int }
  | Illegal_opcode of { word : int }
  | Cross_ring_transfer of { segno : int; wordno : int }
      (** 645-mode only: a CALL or RETURN whose target is not
          executable under the current ring's descriptor segment;
          serviced by the software gatekeeper. *)
  | Halt_in_slave_ring of { ring : Ring.t }
      (** Reserved: HALT outside ring 0 currently reports the general
          [Privileged_instruction]; this keeps vector slot 18 for a
          processor that distinguishes the two. *)
  | Divide_by_zero
  | Service_call of { code : int }
      (** The MME (master mode entry) instruction: a deliberate trap
          into the supervisor, used by the software ring
          implementations for their trampolines. *)
  | Timer_runout
      (** The interval timer reached zero between instructions — the
          trap that drives processor multiplexing.  The saved state
          addresses the next instruction, so restoring it resumes the
          preempted computation. *)
  | Io_completion
      (** An I/O channel operation started by SIOC has completed —
          another of the paper's trap sources; serviced transparently
          by the supervisor. *)
  | Parity_error of { addr : int }
      (** The memory subsystem detected bad parity at absolute
          address [addr] — the word's content can no longer be
          trusted.  Raised only under fault injection
          ({!Hw.Inject}); the supervisor scrubs the word and resumes,
          or quarantines the process when its fault budget is spent.
          Not an access violation: the program did nothing wrong. *)
  | Io_error
      (** The channel operation completed unsuccessfully (device
          error or injected fault); the pending transfer was not
          performed.  The supervisor retries with backoff. *)
  | Watchdog_timeout of { budget : int }
      (** The dispatcher's instruction-budget watchdog: the process
          retired [budget] instructions without faulting, crossing
          rings, or touching a channel.  Raised by {!Os.System.run}
          (not the processor) and delivered through the quarantine
          path, so the rest of the system keeps running. *)
  | Quota_exhausted of { resource : string; limit : int }
      (** A tenant spent its arena allowance of [resource] ("cycles",
          "memory", "faults", "io"): the multi-tenant billing policy,
          not the hardware, declares the reference stream over.
          Delivered through the quarantine path like
          {!Watchdog_timeout}, so co-tenants keep running.  Not an
          access violation: the program's references were all legal —
          it merely ran out of paid-for machine. *)
  (* Capability-backend conditions ({!Isa.Machine.Ring_capability}).
     The capability machine refuses exactly the references the ring
     hardware refuses — the verdicts are aligned by construction (see
     {!Backend.cap_fault_of}) — but reports them in capability terms:
     bounds + permission masks instead of brackets, sealed entry
     capabilities instead of gates, monotonic attenuation instead of
     the bracket rules. *)
  | Cap_load_violation of { effective : Ring.t }
      (** The load capability derived for the effective domain carries
          no read permission (covers both the missing read flag and a
          read-bracket breach). *)
  | Cap_store_violation of { effective : Ring.t }
      (** The store capability carries no write permission. *)
  | Cap_exec_violation of { ring : Ring.t }
      (** The code capability carries no execute permission for the
          fetching domain. *)
  | Cap_seal_violation of { wordno : int; gates : int }
      (** Cross-domain CALL target is not one of the segment's [gates]
          sealed entry capabilities (the capability reading of a gate
          violation). *)
  | Cap_attenuation_violation of { effective : Ring.t; limit : Ring.t }
      (** A derived capability would be less attenuated than its
          parent: the effective domain exceeds what the holding
          domain may delegate (covers raised effective rings,
          out-of-extension calls and ring-changing transfers). *)
  | Cap_tag_violation of { addr : int; segno : int }
      (** A descriptor word consulted during translation has a clear
          validity tag: something overwrote an in-memory capability
          through a data store.  Like {!Parity_error} this is machine
          damage, not a program error — the supervisor scrubs and
          re-tags or quarantines. *)

val code : t -> int
(** A stable small integer per constructor — the trap vector slot the
    processor transfers to when a simulated supervisor is configured
    ({!Isa.Machine.trap_config}).  Payloads are not encoded; handlers
    read the machine conditions for detail. *)

val is_access_violation : t -> bool
(** True for conditions that denote an illegal reference, false for
    those that merely require software intervention (upward call,
    downward return, missing segment or page, 645 cross-ring
    transfer). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
