(* Deterministic fault injector.

   Every decision — when to fire, which word, which bit — comes from
   the plan's rules and a seeded xorshift generator advanced only when
   a rule fires.  The modeled cycle clock is the only notion of time,
   so a run with the same plan and workload replays exactly.

   Corruption goes through [Memory.write_silent]: no modeled cycles are
   charged (the fault is an act of the environment, not the processor)
   but the memory's write observer still fires, keeping the simulator's
   host-side caches coherent with the damaged word. *)

type action =
  | Flip_bit
  | Corrupt_descriptor
  | Transient_fault
  | Io_error
  | Io_stall of int

type rule = { start : int; every : int option; count : int; action : action }

type plan = {
  seed : int;
  fault_budget : int;
  io_retry_limit : int;
  rules : rule list;
}

type event =
  | Deliver_parity of { addr : int; transient : bool }
  | Fail_next_io
  | Stall_io of int

(* Per-rule firing state: [next_due] is the next eligible cycle,
   [remaining] the firings left.  A one-shot rule disables itself by
   dropping [remaining] to 0. *)
type armed = { rule : rule; mutable next_due : int; mutable remaining : int }

type range = { base : int; len : int }

type t = {
  plan : plan;
  mutable rng : int;
  mutable armed : armed list;
  poison : (int, Word.t) Hashtbl.t;
  mutable ranges : range list;
  mutable total : int;
}

(* xorshift64 confined to 62 positive bits; any fixed odd constant
   rescues a zero seed. *)
let seed_mix seed = if seed = 0 then 0x27220A95 else seed land max_int

let next_rand t =
  let mask62 = (1 lsl 62) - 1 in
  let x = t.rng in
  let x = x lxor (x lsl 13) land mask62 in
  let x = x lxor (x lsr 7) in
  let x = x lxor (x lsl 17) land mask62 in
  t.rng <- x;
  x

let rand_below t n = if n <= 0 then 0 else next_rand t mod n

let arm plan =
  List.map
    (fun rule -> { rule; next_due = rule.start; remaining = rule.count })
    plan.rules

let create plan =
  {
    plan;
    rng = seed_mix plan.seed;
    armed = arm plan;
    poison = Hashtbl.create 16;
    ranges = [];
    total = 0;
  }

let plan t = t.plan

let reset t =
  t.rng <- seed_mix t.plan.seed;
  t.armed <- arm t.plan;
  Hashtbl.reset t.poison;
  t.ranges <- [];
  t.total <- 0

let register_descriptor_range t ~base ~len =
  if len > 0 then t.ranges <- t.ranges @ [ { base; len } ]

let is_descriptor_addr t addr =
  List.exists (fun r -> addr >= r.base && addr < r.base + r.len) t.ranges

(* {1 Corruption} *)

let flip_word t mem addr =
  let original = Memory.read_silent mem addr in
  let bit = rand_below t Word.bits in
  (* Keep the first-seen value: scrubbing must restore the word as it
     was before any injected damage, even after repeated hits. *)
  if not (Hashtbl.mem t.poison addr) then Hashtbl.replace t.poison addr original;
  Memory.write_silent mem addr (Word.logxor original (1 lsl bit));
  addr

let random_addr t mem = rand_below t (Memory.size mem)

let descriptor_addr t mem =
  match t.ranges with
  | [] -> random_addr t mem
  | ranges ->
      let total = List.fold_left (fun acc r -> acc + r.len) 0 ranges in
      let idx = rand_below t total in
      let rec pick idx = function
        | [] -> random_addr t mem (* unreachable: idx < total *)
        | r :: rest -> if idx < r.len then r.base + idx else pick (idx - r.len) rest
      in
      pick idx ranges

let scrub t ~mem ~addr =
  match Hashtbl.find_opt t.poison addr with
  | None -> false
  | Some original ->
      Hashtbl.remove t.poison addr;
      Memory.write_silent mem addr original;
      true

let poisoned t = Hashtbl.length t.poison
let injected_total t = t.total

(* {1 Firing} *)

let fire t mem armed =
  armed.remaining <- armed.remaining - 1;
  (match armed.rule.every with
  | Some period when armed.remaining > 0 -> armed.next_due <- armed.next_due + period
  | _ -> armed.remaining <- 0);
  t.total <- t.total + 1;
  match armed.rule.action with
  | Flip_bit ->
      let addr = flip_word t mem (random_addr t mem) in
      Deliver_parity { addr; transient = false }
  | Corrupt_descriptor ->
      let addr = flip_word t mem (descriptor_addr t mem) in
      Deliver_parity { addr; transient = false }
  | Transient_fault ->
      Deliver_parity { addr = random_addr t mem; transient = true }
  | Io_error -> Fail_next_io
  | Io_stall n -> Stall_io n

let poll t ~mem ~cycles =
  let rec first = function
    | [] -> None
    | a :: rest ->
        if a.remaining > 0 && cycles >= a.next_due then Some (fire t mem a)
        else first rest
  in
  first t.armed

(* {1 Checkpoint support}

   The injector's whole dynamic state: the RNG word, each rule's
   firing position (in plan order), the poison table (sorted for a
   canonical encoding upstream) and the delivered-fault total.
   Descriptor ranges are not part of a dump — they derive from the
   process layout and are re-registered when the system is respawned
   before restore. *)

type dump = {
  dump_rng : int;
  dump_armed : (int * int) list;  (* (next_due, remaining), plan order *)
  dump_poison : (int * Word.t) list;  (* ascending address *)
  dump_total : int;
}

let dump t =
  {
    dump_rng = t.rng;
    dump_armed = List.map (fun a -> (a.next_due, a.remaining)) t.armed;
    dump_poison =
      Hashtbl.fold (fun addr w acc -> (addr, w) :: acc) t.poison []
      |> List.sort compare;
    dump_total = t.total;
  }

let restore t d =
  if List.length d.dump_armed <> List.length t.armed then
    invalid_arg "Inject.restore: armed-rule count mismatch";
  t.rng <- d.dump_rng;
  List.iter2
    (fun a (next_due, remaining) ->
      a.next_due <- next_due;
      a.remaining <- remaining)
    t.armed d.dump_armed;
  Hashtbl.reset t.poison;
  List.iter (fun (addr, w) -> Hashtbl.replace t.poison addr w) d.dump_poison;
  t.total <- d.dump_total

(* {1 Plans} *)

let default_plan ~seed =
  {
    seed;
    fault_budget = 4;
    io_retry_limit = 3;
    rules =
      [
        { start = 400; every = Some 700; count = 6; action = Flip_bit };
        { start = 900; every = Some 1500; count = 3; action = Corrupt_descriptor };
        { start = 600; every = Some 1100; count = 4; action = Transient_fault };
        { start = 1200; every = Some 2500; count = 2; action = Io_error };
        { start = 1800; every = None; count = 1; action = Io_stall 64 };
      ];
  }

let action_name = function
  | Flip_bit -> "flip"
  | Corrupt_descriptor -> "descriptor"
  | Transient_fault -> "transient"
  | Io_error -> "io_error"
  | Io_stall _ -> "io_stall"

let pp_plan ppf p =
  Format.fprintf ppf "seed %d@." p.seed;
  Format.fprintf ppf "fault_budget %d@." p.fault_budget;
  Format.fprintf ppf "io_retry_limit %d@." p.io_retry_limit;
  List.iter
    (fun r ->
      Format.fprintf ppf "rule %s start=%d" (action_name r.action) r.start;
      (match r.every with
      | Some e -> Format.fprintf ppf " every=%d" e
      | None -> ());
      Format.fprintf ppf " count=%d" r.count;
      (match r.action with
      | Io_stall n -> Format.fprintf ppf " cycles=%d" n
      | _ -> ());
      Format.fprintf ppf "@.")
    p.rules

let parse_plan text =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let int_of lineno key v =
    match int_of_string_opt v with
    | Some n when n >= 0 -> Ok n
    | _ -> err "line %d: %s expects a non-negative integer, got %S" lineno key v
  in
  let parse_rule lineno words =
    match words with
    | [] -> err "line %d: rule needs a kind" lineno
    | kind :: kvs -> (
        let tbl = Hashtbl.create 4 in
        let rec load = function
          | [] -> Ok ()
          | kv :: rest -> (
              match String.index_opt kv '=' with
              | None -> err "line %d: expected key=value, got %S" lineno kv
              | Some i -> (
                  let k = String.sub kv 0 i in
                  let v = String.sub kv (i + 1) (String.length kv - i - 1) in
                  match int_of lineno k v with
                  | Error _ as e -> e
                  | Ok n ->
                      Hashtbl.replace tbl k n;
                      load rest))
        in
        match load kvs with
        | Error _ as e -> e
        | Ok () -> (
            let get k d = Option.value (Hashtbl.find_opt tbl k) ~default:d in
            let action =
              match kind with
              | "flip" -> Ok Flip_bit
              | "descriptor" -> Ok Corrupt_descriptor
              | "transient" -> Ok Transient_fault
              | "io_error" -> Ok Io_error
              | "io_stall" -> Ok (Io_stall (get "cycles" 64))
              | k -> err "line %d: unknown rule kind %S" lineno k
            in
            match action with
            | Error _ as e -> e
            | Ok action ->
                Ok
                  {
                    start = get "start" 0;
                    every =
                      (match Hashtbl.find_opt tbl "every" with
                      | Some 0 | None -> None
                      | some -> some);
                    count = get "count" 1;
                    action;
                  }))
  in
  let lines = String.split_on_char '\n' text in
  let rec go lineno seed budget retries rules = function
    | [] ->
        Ok
          {
            seed;
            fault_budget = budget;
            io_retry_limit = retries;
            rules = List.rev rules;
          }
    | line :: rest -> (
        let line =
          match String.index_opt line '#' with
          | Some i -> String.sub line 0 i
          | None -> line
        in
        let words =
          String.split_on_char ' ' (String.trim line)
          |> List.filter (fun w -> w <> "")
        in
        match words with
        | [] -> go (lineno + 1) seed budget retries rules rest
        | [ "seed"; v ] -> (
            match int_of lineno "seed" v with
            | Ok n -> go (lineno + 1) n budget retries rules rest
            | Error _ as e -> e)
        | [ "fault_budget"; v ] -> (
            match int_of lineno "fault_budget" v with
            | Ok n -> go (lineno + 1) seed n retries rules rest
            | Error _ as e -> e)
        | [ "io_retry_limit"; v ] -> (
            match int_of lineno "io_retry_limit" v with
            | Ok n -> go (lineno + 1) seed budget n rules rest
            | Error _ as e -> e)
        | "rule" :: words -> (
            match parse_rule lineno words with
            | Ok r -> go (lineno + 1) seed budget retries (r :: rules) rest
            | Error _ as e -> e)
        | w :: _ -> err "line %d: unknown directive %S" lineno w)
  in
  go 1 0 4 3 [] lines
