let memory_access = 1
let sdw_fetch = 0
let instruction_overhead = 1
let ring_check = 0
let trap_entry = 10
let trap_restore = 10
let cap_seal = 2
let cap_unseal = 3
