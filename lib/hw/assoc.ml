(* Bounded LRU: a hash table from key to an intrusive doubly-linked
   node, plus a circular sentinel ordering nodes from most to least
   recently used.  Lookup, insert and evict are all O(1). *)

type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  mutable prev : ('k, 'v) node;
  mutable next : ('k, 'v) node;
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  invalidations : int;
}

type ('k, 'v) t = {
  capacity : int;
  table : ('k, ('k, 'v) node) Hashtbl.t;
  mutable sentinel : ('k, 'v) node option;
      (* Lazily created on first insert: a node needs a key/value to
         exist, and ['k]/['v] have no default. [sentinel.next] is the
         most recently used node, [sentinel.prev] the least. *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable invalidations : int;
}

let create ~capacity () =
  if capacity < 0 then invalid_arg "Assoc.create: capacity < 0";
  {
    capacity;
    table = Hashtbl.create (max 1 (min capacity 64));
    sentinel = None;
    hits = 0;
    misses = 0;
    evictions = 0;
    invalidations = 0;
  }

let capacity t = t.capacity
let length t = Hashtbl.length t.table

let unlink node =
  node.prev.next <- node.next;
  node.next.prev <- node.prev

let link_front sentinel node =
  node.next <- sentinel.next;
  node.prev <- sentinel;
  sentinel.next.prev <- node;
  sentinel.next <- node

let find t k =
  match Hashtbl.find_opt t.table k with
  | None ->
      t.misses <- t.misses + 1;
      None
  | Some node ->
      t.hits <- t.hits + 1;
      (match t.sentinel with
      | Some s when s.next != node ->
          unlink node;
          link_front s node
      | _ -> ());
      Some node.value

let mem t k = Hashtbl.mem t.table k

let insert t k v =
  (* A zero-capacity cache holds nothing: the inserted pair is itself
     the evicted one, so callers can treat "caching disabled" exactly
     like capacity pressure (release the value, count the eviction)
     without a special case of their own. *)
  if t.capacity = 0 then begin
    t.evictions <- t.evictions + 1;
    Some (k, v)
  end
  else
  match Hashtbl.find_opt t.table k with
  | Some node ->
      node.value <- v;
      (match t.sentinel with
      | Some s when s.next != node ->
          unlink node;
          link_front s node
      | _ -> ());
      None
  | None ->
      let s =
        match t.sentinel with
        | Some s -> s
        | None ->
            (* The sentinel's key/value are never read; borrow this
               insert's. *)
            let rec s = { key = k; value = v; prev = s; next = s } in
            t.sentinel <- Some s;
            s
      in
      let evicted =
        if Hashtbl.length t.table >= t.capacity then begin
          let lru = s.prev in
          unlink lru;
          Hashtbl.remove t.table lru.key;
          t.evictions <- t.evictions + 1;
          Some (lru.key, lru.value)
        end
        else None
      in
      let node = { key = k; value = v; prev = s; next = s } in
      link_front s node;
      Hashtbl.replace t.table k node;
      evicted

let remove t k =
  match Hashtbl.find_opt t.table k with
  | None -> false
  | Some node ->
      unlink node;
      Hashtbl.remove t.table k;
      t.invalidations <- t.invalidations + 1;
      true

let drop_where t f =
  let doomed =
    Hashtbl.fold
      (fun k node acc -> if f k node.value then node :: acc else acc)
      t.table []
  in
  List.iter
    (fun node ->
      unlink node;
      Hashtbl.remove t.table node.key;
      t.invalidations <- t.invalidations + 1)
    doomed;
  List.length doomed

let clear t =
  t.invalidations <- t.invalidations + Hashtbl.length t.table;
  Hashtbl.reset t.table;
  t.sentinel <- None

let fold f t acc =
  Hashtbl.fold (fun k node acc -> f k node.value acc) t.table acc

let stats t =
  {
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
    invalidations = t.invalidations;
  }

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0;
  t.evictions <- 0;
  t.invalidations <- 0
