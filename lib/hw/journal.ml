(* Write-ahead journal of device output.

   Every transfer a channel delivers to a device is journalled before
   it reaches the outside world: the sink (when wired) appends one
   line per transfer to durable storage at write time, so the journal
   survives the death of the OS process that wrote it.  On resume
   from a checkpoint, the dead run's journal is preloaded as a replay
   table: a re-executed transfer whose sequence number is already
   journalled is verified against the journalled codes and skipped —
   not re-emitted — so the union of the two runs' journals is byte-
   identical to an uninterrupted run's.  A mismatch is recorded as a
   divergence, never silently papered over: replay is verification,
   not trust. *)

type record = { seq : int; codes : int list }

type outcome = Emitted | Replayed | Diverged of string

type t = {
  mutable next_seq : int;
  replay : (int, int list) Hashtbl.t;
  mutable replay_high : int;
  mutable sink : (record -> unit) option;
  mutable on_skip : (unit -> unit) option;
  mutable divergence : string option;
}

let create () =
  {
    next_seq = 0;
    replay = Hashtbl.create 16;
    replay_high = -1;
    sink = None;
    on_skip = None;
    divergence = None;
  }

let set_sink t f = t.sink <- Some f
let set_on_skip t f = t.on_skip <- Some f
let next_seq t = t.next_seq
let set_next_seq t n = t.next_seq <- n
let replay_high t = t.replay_high
let divergence t = t.divergence

let preload t { seq; codes } =
  Hashtbl.replace t.replay seq codes;
  if seq > t.replay_high then t.replay_high <- seq

let codes_text codes =
  String.concat " " (List.map string_of_int codes)

let append t codes =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  match Hashtbl.find_opt t.replay seq with
  | Some journalled when journalled = codes ->
      (match t.on_skip with Some f -> f () | None -> ());
      Replayed
  | Some journalled ->
      let msg =
        Printf.sprintf
          "transfer %d diverged from journal: journalled [%s], replayed [%s]"
          seq (codes_text journalled) (codes_text codes)
      in
      if t.divergence = None then t.divergence <- Some msg;
      Diverged msg
  | None ->
      (match t.sink with Some f -> f { seq; codes } | None -> ());
      Emitted

(* One line per transfer: process name, sequence number, then the
   transferred character codes.  Process names come from %process
   declarations and carry no spaces. *)
let to_line ~pname { seq; codes } =
  if codes = [] then Printf.sprintf "%s %d" pname seq
  else Printf.sprintf "%s %d %s" pname seq (codes_text codes)

let of_line line =
  let words =
    String.split_on_char ' ' (String.trim line)
    |> List.filter (fun w -> w <> "")
  in
  match words with
  | pname :: seq :: codes -> (
      match
        ( int_of_string_opt seq,
          List.fold_left
            (fun acc c ->
              match (acc, int_of_string_opt c) with
              | Some l, Some n -> Some (n :: l)
              | _ -> None)
            (Some []) codes )
      with
      | Some seq, Some rev_codes when seq >= 0 ->
          Ok (pname, { seq; codes = List.rev rev_codes })
      | _ -> Error (Printf.sprintf "malformed journal line %S" line)
    )
  | _ -> Error (Printf.sprintf "malformed journal line %S" line)
