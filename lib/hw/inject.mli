(** Deterministic fault injection.

    The injector models the failure modes the paper's hardware is
    designed to survive without compromising protection: memory parity
    errors, damaged descriptor and page-table words, transient faults,
    and I/O channel failures.  Everything it does is a deterministic
    function of the injection {!plan} and the modeled cycle clock — no
    wall-clock, no host randomness — so a campaign replays byte-for-byte
    from its seed, which is what lets the chaos harness diff two runs.

    Faults are {e detected}, never silent: a corrupted word is recorded
    in a poison table holding the original value, and the machine
    delivers a parity fault before the corrupted word can influence an
    access decision.  The supervisor then {!scrub}s the word (modeling
    ECC correction from a good copy) or quarantines the process.  This
    mirrors the paper's claim that the hardware checks every reference:
    a fault may cost work, but it must not widen access. *)

type action =
  | Flip_bit  (** Flip one random bit of one random memory word. *)
  | Corrupt_descriptor
      (** Flip a bit inside a registered descriptor-segment or
          page-table range (falls back to {!Flip_bit} when no range is
          registered). *)
  | Transient_fault
      (** Deliver a parity fault with no actual corruption — a soft
          error that scrubbing trivially clears. *)
  | Io_error  (** Make the next I/O completion fail. *)
  | Io_stall of int  (** Delay the pending I/O completion by [n] cycles. *)

type rule = {
  start : int;  (** First eligible modeled cycle. *)
  every : int option;  (** Re-fire period; [None] = fire once. *)
  count : int;  (** Total firings allowed. *)
  action : action;
}

type plan = {
  seed : int;
  fault_budget : int;
      (** Faults a single process may absorb before quarantine. *)
  io_retry_limit : int;
      (** Failed-transfer retries before the kernel gives up. *)
  rules : rule list;
}

type event =
  | Deliver_parity of { addr : int; transient : bool }
      (** A parity fault is due at [addr]; when [transient] no word was
          actually corrupted. *)
  | Fail_next_io  (** The in-flight (or next) I/O transfer must fail. *)
  | Stall_io of int  (** The pending I/O completion slips by [n] cycles. *)

type t

val create : plan -> t

val plan : t -> plan

val default_plan : seed:int -> plan
(** A mixed workload exercising every action: periodic bit flips,
    descriptor corruption, transients, an I/O error and a stall. *)

val parse_plan : string -> (plan, string) result
(** Parse the plan text format: one directive per line, [#] comments.
    [seed N], [fault_budget N], [io_retry_limit N], and
    [rule KIND start=N [every=N] [count=N] [cycles=N]] where [KIND] is
    [flip], [descriptor], [transient], [io_error] or [io_stall]
    ([cycles] is the stall length). *)

val pp_plan : Format.formatter -> plan -> unit
(** Deterministic rendering, parseable by {!parse_plan}. *)

val register_descriptor_range : t -> base:int -> len:int -> unit
(** Tell the injector where descriptor segments and page tables live in
    absolute memory, so [Corrupt_descriptor] can aim at them. *)

val is_descriptor_addr : t -> int -> bool
(** Does [addr] fall in a registered descriptor range?  The kernel uses
    this to decide between plain scrubbing and cache degradation. *)

val poll : t -> mem:Memory.t -> cycles:int -> event option
(** Called by the machine between instructions.  Fires at most one due
    rule: corruption actions mutate [mem] through its silent-write path
    (so cache write-observers stay coherent) and record the original
    word in the poison table.  Returns the event the machine must act
    on, or [None]. *)

val scrub : t -> mem:Memory.t -> addr:int -> bool
(** Restore the original word at [addr] if it is poisoned.  [true] if a
    repair happened; [false] for transient faults (nothing to repair). *)

val poisoned : t -> int
(** Outstanding corrupted words not yet scrubbed. *)

val injected_total : t -> int
(** Events returned by {!poll} so far. *)

val reset : t -> unit
(** Re-arm every rule, reseed the generator, and clear the poison table
    and descriptor ranges: a fresh campaign from the same plan. *)

(** {1 Checkpoint support} *)

type dump = {
  dump_rng : int;
  dump_armed : (int * int) list;
      (** [(next_due, remaining)] per rule, in plan order. *)
  dump_poison : (int * Word.t) list;  (** Ascending address. *)
  dump_total : int;
}

val dump : t -> dump
(** The injector's whole dynamic state.  Descriptor ranges are not
    included: they derive from the process layout and are
    re-registered when the system is respawned before a restore. *)

val restore : t -> dump -> unit
(** Inverse of {!dump} onto an injector created from the same plan.
    Raises [Invalid_argument] if the rule count disagrees. *)
