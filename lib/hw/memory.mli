(** Absolute (physical) memory.

    A flat array of 36-bit words addressed by absolute address.
    Accesses made on behalf of the simulated processor go through
    {!read} and {!write}, which charge one cycle each and bump the
    memory counters; the loader and the inspection tools use the
    [_silent] variants, which model no hardware activity.

    Addressing outside physical memory raises [Invalid_argument]: it
    indicates a simulator configuration error, not a condition the
    simulated hardware can reach (segment bounds are checked during
    address translation before any absolute access). *)

type t

val create : ?size:int -> Trace.Counters.t -> t
(** [size] defaults to 2^21 words. *)

val size : t -> int
val counters : t -> Trace.Counters.t

val set_write_observer : t -> (int -> unit) -> unit
(** [set_write_observer t f] arranges for [f addr] to run after every
    store into [t] — {!write} and {!write_silent} alike — so caches
    layered above memory (SDW, page-table and decoded-instruction
    associative memories) can invalidate entries that depend on the
    written word.  One observer at a time; the machine that owns the
    memory installs it.  The observer must not write to [t]. *)

val read : t -> int -> Word.t
val write : t -> int -> Word.t -> unit

val read_silent : t -> int -> Word.t
val write_silent : t -> int -> Word.t -> unit

val blit_silent : t -> int -> Word.t array -> unit
(** [blit_silent mem addr words] copies [words] to consecutive
    absolute addresses starting at [addr]. *)

(** {1 Dirty-page tracking}

    Every store — {!write}, {!write_silent}, {!blit_silent}, and
    everything layered on them (the injector's poison writes, fault
    frames, journal replay, snapshot application) — marks the written
    page dirty.  The snapshot layer clears the map at capture points,
    so between two captures the dirty set is a conservative superset
    of the pages whose contents changed: incremental captures need
    only serialize those.  Nothing in the simulated machine reads the
    map; it cannot affect modeled cycles. *)

val page_words : int
(** Words per dirty-tracking page (a power of two). *)

val dirty_pages : t -> int list
(** Page numbers marked dirty since the last {!clear_dirty}, in
    ascending order.  Page [p] covers absolute addresses
    [p * page_words .. min ((p+1) * page_words, size) - 1]. *)

val clear_dirty : t -> unit
(** Reset the dirty map and advance {!dirty_generation}.  Only capture
    points may call this: clearing anywhere else breaks the superset
    invariant the incremental snapshot relies on. *)

val dirty_generation : t -> int
(** Number of {!clear_dirty} calls so far — stamps which capture epoch
    a dirty set belongs to. *)

(** {1 Validity tags}

    One tag bit per word — the capability backend's tag store.  The
    store is lazily allocated: until {!enable_tags} runs, every
    operation below is a single length test and the write path carries
    no extra work, so the hardware and 645 machines are untouched.
    When enabled, {b every} store clears the written word's tag (a
    forged descriptor is just data); only {!set_tag} — the kernel
    installing a capability — sets one. *)

val enable_tags : t -> unit
(** Allocate the tag store (all words untagged).  Idempotent. *)

val tags_enabled : t -> bool

val set_tag : t -> int -> unit
(** Mark a word as holding a valid capability.  Raises
    [Invalid_argument] when the tag store is not enabled: only the
    capability machine may mint tags. *)

val clear_tag : t -> int -> unit
(** Explicitly untag a word.  No-op when tags are disabled. *)

val tagged : t -> int -> bool
(** [false] whenever tags are disabled. *)

val tagged_addrs : t -> int list
(** Absolute addresses of all tagged words, ascending — what the
    snapshot codec serializes. *)

val clear_tags : t -> unit
(** Untag every word (snapshot restore resets then re-applies). *)
