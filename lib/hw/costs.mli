(** Cycle-cost model of the simulated processor.

    The paper quotes no absolute timings, so the model is deliberately
    coarse and uniform; what the benches compare are counts and
    ratios, which are insensitive to the constants chosen here as long
    as they are applied identically to both ring implementations.
    Each constant states what it charges for. *)

val memory_access : int
(** One word read or written in absolute memory: 1. *)

val sdw_fetch : int
(** Retrieving an SDW from the associative memory: 0 cycles on a hit.
    The cache itself lives in {!Isa.Machine}; a miss reads the two SDW
    words from the descriptor segment and is charged as ordinary
    memory traffic.  SDW fetches are counted separately so the benches
    can report them. *)

val instruction_overhead : int
(** Fixed decode-and-execute overhead per instruction beyond its
    memory traffic: 1. *)

val ring_check : int
(** A bracket comparison wired into the address-translation data path:
    0 — the paper's point is that validation happens "with little
    effort added" while the SDW is examined anyway. *)

val trap_entry : int
(** Processor state save and forced transfer to the supervisor's fixed
    trap location: 10. *)

val trap_restore : int
(** The privileged instruction restoring saved processor state: 10. *)

val cap_seal : int
(** Sealing a capability (minting the caller's sealed return
    capability at a cross-domain CALL): 2.  Charged only by the
    capability backend; hardware and 645 cycle accounting never sees
    it. *)

val cap_unseal : int
(** Unsealing a capability (checking the sealed entry at CALL, or the
    sealed return at RETURN): 3.  A capability crossing therefore
    costs [cap_unseal + cap_seal] extra on the way down and
    [cap_unseal] on the way back — an order of magnitude below the 645
    trap round trip. *)
