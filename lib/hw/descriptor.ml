let words_per_sdw = 2

(* The counter-free fetch: what the hardware reads from the descriptor
   segment, without modeling any activity.  The machine's host-side
   SDW cache refills through this so cache residency never perturbs
   the modeled cycle accounting. *)
let fetch_sdw_silent mem (dbr : Registers.dbr) ~segno =
  if segno < 0 || segno >= dbr.bound then
    Error (Rings.Fault.Missing_segment { segno })
  else
    let w0 = Memory.read_silent mem (dbr.base + (words_per_sdw * segno)) in
    let w1 =
      Memory.read_silent mem (dbr.base + (words_per_sdw * segno) + 1)
    in
    match Sdw.decode (w0, w1) with
    | Error _ -> Error (Rings.Fault.Missing_segment { segno })
    | Ok sdw ->
        if sdw.Sdw.present then Ok sdw
        else Error (Rings.Fault.Missing_segment { segno })

let fetch_sdw mem (dbr : Registers.dbr) ~segno =
  Trace.Counters.bump_sdw_fetches (Memory.counters mem);
  Trace.Counters.charge (Memory.counters mem) Costs.sdw_fetch;
  fetch_sdw_silent mem dbr ~segno

let store_sdw mem (dbr : Registers.dbr) ~segno sdw =
  if segno < 0 || segno >= dbr.bound then
    invalid_arg
      (Printf.sprintf "Descriptor.store_sdw: segno %d outside DBR bound %d"
         segno dbr.bound);
  let w0, w1 = Sdw.encode sdw in
  let a0 = dbr.base + (words_per_sdw * segno) in
  Memory.write_silent mem a0 w0;
  Memory.write_silent mem (a0 + 1) w1;
  (* In the capability backend every installed SDW is a capability at
     rest: mint its validity tags.  [store_sdw] is the kernel's only
     descriptor-install path, so tags exist exactly on words the
     kernel wrote — any other store clears them. *)
  if Memory.tags_enabled mem then begin
    Memory.set_tag mem a0;
    Memory.set_tag mem (a0 + 1)
  end

let translate (sdw : Sdw.t) ~segno ~wordno =
  if Sdw.contains sdw ~wordno then Ok (sdw.base + wordno)
  else
    Error (Rings.Fault.Bound_violation { segno; wordno; bound = sdw.bound })

(* Paged translation: an extra PTW retrieval, counted and charged as a
   memory access, then the frame base plus the in-page offset. *)
let translate_paged mem (sdw : Sdw.t) ~segno ~wordno =
  if not (Sdw.contains sdw ~wordno) then
    Error (Rings.Fault.Bound_violation { segno; wordno; bound = sdw.bound })
  else begin
    let pageno = Paging.page_of_wordno wordno in
    Trace.Counters.bump_ptw_fetches (Memory.counters mem);
    let ptw = Paging.decode_ptw (Memory.read mem (sdw.base + pageno)) in
    if ptw.Paging.present then
      Ok (ptw.Paging.frame_base + Paging.offset_in_page wordno)
    else Error (Rings.Fault.Missing_page { segno; pageno })
  end

let resolve mem dbr (addr : Addr.t) =
  match fetch_sdw mem dbr ~segno:addr.segno with
  | Error _ as e -> e
  | Ok sdw -> (
      let translated =
        if sdw.Sdw.paged then
          translate_paged mem sdw ~segno:addr.segno ~wordno:addr.wordno
        else translate sdw ~segno:addr.segno ~wordno:addr.wordno
      in
      match translated with
      | Error _ as e -> e
      | Ok abs -> Ok (sdw, abs))
