(** Descriptor-segment access and address translation.

    The collection of segments in a virtual memory is defined by the
    descriptor segment, an array of SDWs in absolute memory whose
    origin is held in the DBR.  The segment number of a segment is the
    index of its SDW.  Address translation — performed on {e every}
    reference an executing program makes — is an indexed retrieval of
    the SDW followed by a bound check and base addition.

    Changing the DBR contents makes the processor interpret two-part
    addresses relative to a different descriptor segment; this is how
    each process gets its own virtual memory, and how the 645-style
    software-ring baseline switches between per-ring descriptor
    segments. *)

val words_per_sdw : int
(** 2 — see {!Sdw}. *)

val fetch_sdw :
  Memory.t -> Registers.dbr -> segno:int -> (Sdw.t, Rings.Fault.t) result
(** Retrieve and decode the SDW for [segno].  Out-of-bound segment
    numbers, absent segments and malformed SDWs all surface as
    [Missing_segment] — from the program's point of view there simply
    is no such segment.  Bumps the SDW-fetch counter; per the cost
    model the fetch itself is free (associative memory). *)

val fetch_sdw_silent :
  Memory.t -> Registers.dbr -> segno:int -> (Sdw.t, Rings.Fault.t) result
(** [fetch_sdw] without any counter or cycle activity, for host-side
    cache refills that must not perturb the modeled cost accounting. *)

val store_sdw : Memory.t -> Registers.dbr -> segno:int -> Sdw.t -> unit
(** Encode and store an SDW.  Used by supervisor-level code and the
    loader; accesses are silent.  Raises [Invalid_argument] if [segno]
    is outside the DBR bound. *)

val translate :
  Sdw.t -> segno:int -> wordno:int -> (int, Rings.Fault.t) result
(** Absolute address of (segno, wordno) under an {e unpaged} SDW, or a
    bound-violation fault. *)

val translate_paged :
  Memory.t -> Sdw.t -> segno:int -> wordno:int -> (int, Rings.Fault.t) result
(** Translation through the page table of a paged SDW: bound check,
    PTW retrieval (one memory access), then frame base plus in-page
    offset; a not-present PTW is a missing-page fault. *)

val resolve :
  Memory.t -> Registers.dbr -> Addr.t -> (Sdw.t * int, Rings.Fault.t) result
(** [fetch_sdw] then [translate]: the full translation step, returning
    the SDW (whose access fields the caller validates against) and the
    absolute address. *)
