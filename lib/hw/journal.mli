(** Write-ahead journal of device output.

    The checkpoint/restore subsystem must not re-emit output the dead
    run already delivered to the outside world.  Each device carries
    one journal: every transfer is assigned a monotonic sequence
    number and offered to the sink (which appends it to durable
    storage {e before} the run continues — write-ahead).  On resume,
    the dead run's journal is {!preload}ed as a replay table; a
    re-executed transfer already journalled is verified against the
    journalled codes and skipped rather than re-emitted, so the
    journal after resume is byte-identical to an uninterrupted run's.
    A replayed transfer whose codes disagree with the journal is a
    {!Diverged} outcome and is latched in {!divergence} — replay
    verifies the resumed run, it does not trust it. *)

type record = { seq : int; codes : int list }
(** One journalled transfer: its sequence number and the character
    codes the channel delivered. *)

type outcome =
  | Emitted  (** New output: offered to the sink. *)
  | Replayed  (** Already journalled and identical: skipped. *)
  | Diverged of string
      (** Already journalled but different: the resumed run is not
          reproducing the original — the message says how. *)

type t

val create : unit -> t

val set_sink : t -> (record -> unit) -> unit
(** Called once per {!Emitted} transfer, in sequence order.  The
    caller should write and flush durably before returning. *)

val set_on_skip : t -> (unit -> unit) -> unit
(** Called once per {!Replayed} transfer (counter hook). *)

val append : t -> int list -> outcome
(** Journal one transfer, assigning the next sequence number. *)

val preload : t -> record -> unit
(** Load one record of the dead run's journal into the replay table. *)

val next_seq : t -> int

val set_next_seq : t -> int -> unit
(** Restore path: re-seat the sequence counter from a checkpoint. *)

val replay_high : t -> int
(** Highest preloaded sequence number; [-1] when none. *)

val divergence : t -> string option
(** First divergence seen, if any. *)

val to_line : pname:string -> record -> string
(** Render one journal line: process name, sequence number, codes. *)

val of_line : string -> (string * record, string) result
(** Parse {!to_line}'s format back; errors on malformed lines. *)
