type t = {
  words : int array;
  counters : Trace.Counters.t;
  mutable on_write : int -> unit;
}

let default_size = 1 lsl 21

let ignore_write (_ : int) = ()

let create ?(size = default_size) counters =
  { words = Array.make size 0; counters; on_write = ignore_write }

let size t = Array.length t.words
let counters t = t.counters
let set_write_observer t f = t.on_write <- f

let check t addr =
  if addr < 0 || addr >= Array.length t.words then
    invalid_arg (Printf.sprintf "Memory: absolute address %d out of range" addr)

let read_silent t addr =
  check t addr;
  t.words.(addr)

let write_silent t addr w =
  check t addr;
  t.words.(addr) <- Word.of_int w;
  t.on_write addr

let read t addr =
  Trace.Counters.bump_memory_reads t.counters;
  Trace.Counters.charge t.counters Costs.memory_access;
  read_silent t addr

let write t addr w =
  Trace.Counters.bump_memory_writes t.counters;
  Trace.Counters.charge t.counters Costs.memory_access;
  write_silent t addr w

let blit_silent t addr words =
  Array.iteri (fun i w -> write_silent t (addr + i) w) words
