type t = {
  words : int array;
  counters : Trace.Counters.t;
  mutable on_write : int -> unit;
  (* Dirty-page map: one flag per [page_words]-word page, set on every
     store and cleared only by [clear_dirty] (the snapshot layer calls
     it at capture points).  The flag store rides the existing write
     path — one array store, no branch on the hot path. *)
  dirty : bool array;
  mutable dirty_generation : int;
  (* Validity tags, one byte per word — the capability backend's tag
     store.  Zero-length (and therefore branch-free to test) unless
     [enable_tags] ran: the hardware and 645 machines never allocate
     it, so their write path is untouched.  When enabled, every store
     clears the written word's tag; only {!set_tag} (the kernel
     installing a capability) sets one. *)
  mutable tags : Bytes.t;
}

let default_size = 1 lsl 21

(* Power of two so the page of an address is a shift, not a divide. *)
let page_shift = 10
let page_words = 1 lsl page_shift

let ignore_write (_ : int) = ()

let create ?(size = default_size) counters =
  {
    words = Array.make size 0;
    counters;
    on_write = ignore_write;
    dirty = Array.make ((size + page_words - 1) lsr page_shift) false;
    dirty_generation = 0;
    tags = Bytes.empty;
  }

let size t = Array.length t.words
let counters t = t.counters
let set_write_observer t f = t.on_write <- f

let check t addr =
  if addr < 0 || addr >= Array.length t.words then
    invalid_arg (Printf.sprintf "Memory: absolute address %d out of range" addr)

let read_silent t addr =
  check t addr;
  t.words.(addr)

let write_silent t addr w =
  check t addr;
  t.words.(addr) <- Word.of_int w;
  t.dirty.(addr lsr page_shift) <- true;
  if Bytes.length t.tags <> 0 then Bytes.unsafe_set t.tags addr '\000';
  t.on_write addr

let read t addr =
  Trace.Counters.bump_memory_reads t.counters;
  Trace.Counters.charge t.counters Costs.memory_access;
  read_silent t addr

let write t addr w =
  Trace.Counters.bump_memory_writes t.counters;
  Trace.Counters.charge t.counters Costs.memory_access;
  write_silent t addr w

let blit_silent t addr words =
  Array.iteri (fun i w -> write_silent t (addr + i) w) words

let dirty_pages t =
  let acc = ref [] in
  for p = Array.length t.dirty - 1 downto 0 do
    if t.dirty.(p) then acc := p :: !acc
  done;
  !acc

let clear_dirty t =
  Array.fill t.dirty 0 (Array.length t.dirty) false;
  t.dirty_generation <- t.dirty_generation + 1

let dirty_generation t = t.dirty_generation

(* {1 Validity tags} *)

let enable_tags t =
  if Bytes.length t.tags = 0 then
    t.tags <- Bytes.make (Array.length t.words) '\000'

let tags_enabled t = Bytes.length t.tags <> 0

let set_tag t addr =
  check t addr;
  if Bytes.length t.tags = 0 then
    invalid_arg "Memory.set_tag: tag store not enabled";
  Bytes.unsafe_set t.tags addr '\001'

let clear_tag t addr =
  check t addr;
  if Bytes.length t.tags <> 0 then Bytes.unsafe_set t.tags addr '\000'

let tagged t addr =
  check t addr;
  Bytes.length t.tags <> 0 && Bytes.unsafe_get t.tags addr = '\001'

let tagged_addrs t =
  let acc = ref [] in
  for a = Bytes.length t.tags - 1 downto 0 do
    if Bytes.unsafe_get t.tags a = '\001' then acc := a :: !acc
  done;
  !acc

let clear_tags t =
  if Bytes.length t.tags <> 0 then
    Bytes.fill t.tags 0 (Bytes.length t.tags) '\000'
