(** A bounded associative memory with least-recently-used replacement.

    This is the host-side model of the paper's hardware associative
    memory: a small, fully associative store consulted on every
    reference, with O(1) lookup, insert and eviction.  The simulator
    uses three instances — SDWs, page-table words and decoded
    instructions — to avoid re-walking core and re-decoding words on
    the host.  Instances memoize work for the {e host}; they must
    never change the modeled cycle accounting, which is charged by the
    machine's separate modeled tag store (see {!Isa.Machine}).

    Each instance keeps its own hit/miss/eviction/invalidation
    counters so cache effectiveness is observable. *)

type ('k, 'v) t

type stats = {
  hits : int;
  misses : int;
  evictions : int;  (** Entries displaced by capacity pressure. *)
  invalidations : int;  (** Entries dropped by [remove]/[drop_where]/[clear]. *)
}

val create : capacity:int -> unit -> ('k, 'v) t
(** [create ~capacity ()] is an empty cache holding at most [capacity]
    entries.  [capacity 0] is a legal degenerate instance — caching
    disabled: every {!find} misses and every {!insert} immediately
    "evicts" the inserted pair — so callers can tune capacity down to
    nothing without a special case.  Raises [Invalid_argument] if
    [capacity < 0]. *)

val capacity : ('k, 'v) t -> int

val length : ('k, 'v) t -> int

val find : ('k, 'v) t -> 'k -> 'v option
(** [find t k] returns the cached value and marks [k] most recently
    used.  Counts a hit or a miss. *)

val mem : ('k, 'v) t -> 'k -> bool
(** Presence test without touching recency or the hit/miss counters. *)

val insert : ('k, 'v) t -> 'k -> 'v -> ('k * 'v) option
(** [insert t k v] binds [k] to [v] as most recently used, replacing
    any previous binding of [k].  When the cache is full the
    least-recently-used entry is evicted and returned (and counted),
    so the caller can release anything keyed off it.  At capacity 0
    the inserted pair itself comes straight back as the eviction. *)

val remove : ('k, 'v) t -> 'k -> bool
(** [remove t k] drops [k]'s entry if present; returns whether one was
    dropped (counted as an invalidation). *)

val drop_where : ('k, 'v) t -> ('k -> 'v -> bool) -> int
(** [drop_where t f] drops every entry satisfying [f], returning how
    many were dropped (each counted as an invalidation).  O(n). *)

val clear : ('k, 'v) t -> unit
(** Drop everything (counted as invalidations).  Counters survive. *)

val fold : ('k -> 'v -> 'a -> 'a) -> ('k, 'v) t -> 'a -> 'a

val stats : ('k, 'v) t -> stats

val reset_stats : ('k, 'v) t -> unit
