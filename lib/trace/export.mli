(** Exporters: Chrome trace-event JSON, JSONL raw events, and
    Prometheus-style / JSON metrics snapshots.

    Every exporter reads modeled state only — cycles, counters, spans
    — never the host clock, so output is byte-deterministic for a
    given run ([make trace-smoke] relies on this).

    In the Chrome trace, each ring is rendered as a "thread" of one
    process, the gatekeeper as a separate thread; spans become ["X"]
    complete events and stamped log events become instants.  Load the
    file in {{:https://ui.perfetto.dev}Perfetto} or [chrome://tracing];
    1 µs of trace time = 1 modeled cycle. *)

val chrome_trace :
  ?backend:string ->
  ?events:Event.stamped list ->
  ?spans:Span.completed list ->
  unit ->
  string
(** A complete Chrome trace-event document ([{"traceEvents": [...]}]).
    [backend] (["hw"], ["645"], ["cap"]) labels every span's args so
    crossing spans from different protection backends remain
    distinguishable when documents are merged; omitted, the args are
    unchanged. *)

val chrome_trace_fleet :
  (int * string * Event.stamped list * Span.completed list) list -> string
(** A merged Chrome trace for a traced serving campaign: one Chrome
    "process" per group [(pid, name, events, spans)] — the serving
    layer passes one group per request, pid = request id, in id order
    — with rings as threads inside each.  Deterministic whenever the
    groups are. *)

val events_jsonl : Event.stamped list -> string
(** One JSON object per line per stamped event: [seq], [cycles],
    [type], and the event's own fields. *)

val metrics_json :
  counters:Counters.snapshot ->
  ?events:Event.log ->
  ?spans:Span.tracker ->
  ?profile:Profile.t ->
  ?segment_names:(int * string) list ->
  unit ->
  string
(** A JSON metrics snapshot: every {!Counters.fields} entry, plus —
    when given — event-log occupancy, span-latency histograms with
    deterministic p50/p90/p99 per crossing kind, and the
    per-ring/per-segment cycle attribution ([segment_names] decorates
    segment numbers). *)

val metrics_prometheus :
  counters:Counters.snapshot ->
  ?events:Event.log ->
  ?spans:Span.tracker ->
  ?profile:Profile.t ->
  ?segment_names:(int * string) list ->
  unit ->
  string
(** The same snapshot as a Prometheus text-format page
    ([rings_<counter>], [rings_profile_*{ring=..}],
    [rings_span_latency_cycles_bucket{kind=..,le=..}] cumulative
    histograms). *)
