(* Per-ring and per-segment attribution of modeled cycles and retired
   instructions.  The CPU attributes each instruction's cycle delta to
   the (ring, segment) it was fetched from; the OS substrate
   attributes gatekeeper/supervisor work done outside any instruction
   (fault handling on the host side) to the kernel bucket.  All
   figures are modeled cycles — deterministic, host-independent. *)

type cell = { mutable cycles : int; mutable instructions : int }

type t = {
  mutable enabled : bool;
  ring_cycles : int array;
  ring_instructions : int array;
  segments : (int, cell) Hashtbl.t;
  mutable kernel_cycles : int;
}

let create ~rings () =
  if rings < 1 then invalid_arg "Profile.create: rings < 1";
  {
    enabled = false;
    ring_cycles = Array.make rings 0;
    ring_instructions = Array.make rings 0;
    segments = Hashtbl.create 32;
    kernel_cycles = 0;
  }

let enabled t = t.enabled
let set_enabled t b = t.enabled <- b

let clear t =
  Array.fill t.ring_cycles 0 (Array.length t.ring_cycles) 0;
  Array.fill t.ring_instructions 0 (Array.length t.ring_instructions) 0;
  Hashtbl.reset t.segments;
  t.kernel_cycles <- 0

let attribute t ~ring ~segno ~cycles ~instructions =
  t.ring_cycles.(ring) <- t.ring_cycles.(ring) + cycles;
  t.ring_instructions.(ring) <- t.ring_instructions.(ring) + instructions;
  let cell =
    match Hashtbl.find_opt t.segments segno with
    | Some c -> c
    | None ->
        let c = { cycles = 0; instructions = 0 } in
        Hashtbl.add t.segments segno c;
        c
  in
  cell.cycles <- cell.cycles + cycles;
  cell.instructions <- cell.instructions + instructions

let attribute_kernel t ~cycles = t.kernel_cycles <- t.kernel_cycles + cycles

let kernel_cycles t = t.kernel_cycles

let per_ring t =
  let acc = ref [] in
  for r = Array.length t.ring_cycles - 1 downto 0 do
    if t.ring_cycles.(r) <> 0 || t.ring_instructions.(r) <> 0 then
      acc := (r, t.ring_cycles.(r), t.ring_instructions.(r)) :: !acc
  done;
  !acc

let per_segment t =
  Hashtbl.fold
    (fun segno c acc -> (segno, c.cycles, c.instructions) :: acc)
    t.segments []
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)

let total_cycles t = Array.fold_left ( + ) t.kernel_cycles t.ring_cycles

let merge_into ~dst src =
  if Array.length src.ring_cycles <> Array.length dst.ring_cycles then
    invalid_arg "Profile.merge_into: ring counts differ";
  for r = 0 to Array.length src.ring_cycles - 1 do
    dst.ring_cycles.(r) <- dst.ring_cycles.(r) + src.ring_cycles.(r);
    dst.ring_instructions.(r) <-
      dst.ring_instructions.(r) + src.ring_instructions.(r)
  done;
  Hashtbl.iter
    (fun segno (c : cell) ->
      match Hashtbl.find_opt dst.segments segno with
      | Some d ->
          d.cycles <- d.cycles + c.cycles;
          d.instructions <- d.instructions + c.instructions
      | None ->
          Hashtbl.add dst.segments segno
            { cycles = c.cycles; instructions = c.instructions })
    src.segments;
  dst.kernel_cycles <- dst.kernel_cycles + src.kernel_cycles

(* Checkpoint support: ring arrays, segment cells (sorted, for a
   canonical byte encoding upstream), and the kernel bucket. *)
let dump t =
  ( Array.copy t.ring_cycles,
    Array.copy t.ring_instructions,
    per_segment t,
    t.kernel_cycles )

let restore t (ring_cycles, ring_instructions, segments, kernel_cycles) =
  if
    Array.length ring_cycles <> Array.length t.ring_cycles
    || Array.length ring_instructions <> Array.length t.ring_instructions
  then invalid_arg "Profile.restore: wrong ring count";
  clear t;
  Array.blit ring_cycles 0 t.ring_cycles 0 (Array.length ring_cycles);
  Array.blit ring_instructions 0 t.ring_instructions 0
    (Array.length ring_instructions);
  List.iter
    (fun (segno, cycles, instructions) ->
      Hashtbl.replace t.segments segno { cycles; instructions })
    segments;
  t.kernel_cycles <- kernel_cycles
