(** A minimal JSON reader.

    Just enough to {e validate} and inspect what the trace exporters
    emit (tests and the [trace-smoke] target) without an external
    dependency.  The exporters themselves build their output with
    [Buffer] — this module only reads. *)

type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | Array of t list
  | Object of (string * t) list

val parse : string -> (t, string) result
(** Parse one complete JSON document; [Error] describes the first
    syntax error and its byte offset. *)

val member : string -> t -> t option
(** Field lookup in an [Object]; [None] otherwise. *)

val pp : Format.formatter -> t -> unit
