(* Per-tenant accounting: each tenant's slices land here as counter
   snapshots and are folded with [Counters.add], so a bill is exactly
   the pointwise sum of what the machine's counters moved while that
   tenant held the processor.  Folding is in ascending tenant id, so a
   report assembled from any slice order — one wave at a time or
   several waves on different domains — reads back identically. *)

type t = (int, Counters.snapshot) Hashtbl.t

let create () : t = Hashtbl.create 64

let zero = Counters.snapshot (Counters.create ())

let charge t ~tenant (s : Counters.snapshot) =
  let prior =
    match Hashtbl.find_opt t tenant with Some p -> p | None -> zero
  in
  Hashtbl.replace t tenant (Counters.add prior s)

let bill t ~tenant =
  match Hashtbl.find_opt t tenant with Some s -> s | None -> zero

let tenants t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t [] |> List.sort compare

let fold t ~init ~f =
  List.fold_left (fun acc k -> f acc k (bill t ~tenant:k)) init (tenants t)

let total t =
  fold t ~init:zero ~f:(fun acc _ s -> Counters.add acc s)
