(** Cycle and event accounting for the simulated processor.

    The paper reports no absolute performance numbers; what matters for
    reproducing its claims is the {e relative} cost of the different
    reference and control-transfer kinds, and in particular how many
    supervisor interventions (traps) each ring-crossing flavour incurs.
    Every simulated machine carries one [t]; the CPU and the operating
    system substrate charge cycles and bump event counters through this
    interface, and the benches read them back out. *)

type t

val create : unit -> t

val reset : t -> unit

(** {1 Cycle charging} *)

val charge : t -> int -> unit
(** [charge c n] adds [n] cycles to the running total. *)

val cycles : t -> int

(** {1 Event counters}

    Each [bump_*] increments one event counter; [*_count] reads it. *)

val bump_instructions : t -> unit
val instructions : t -> int

val bump_memory_reads : t -> unit
val memory_reads : t -> int

val bump_memory_writes : t -> unit
val memory_writes : t -> int

val bump_sdw_fetches : t -> unit
val sdw_fetches : t -> int

val bump_indirections : t -> unit
val indirections : t -> int

val bump_traps : t -> unit
val traps : t -> int

val bump_calls_same_ring : t -> unit
val calls_same_ring : t -> int

val bump_calls_downward : t -> unit
val calls_downward : t -> int

val bump_calls_upward : t -> unit
val calls_upward : t -> int

val bump_returns_same_ring : t -> unit
val returns_same_ring : t -> int

val bump_returns_upward : t -> unit
val returns_upward : t -> int

val bump_returns_downward : t -> unit
val returns_downward : t -> int

val bump_gatekeeper_entries : t -> unit
val gatekeeper_entries : t -> int

val bump_descriptor_switches : t -> unit
val descriptor_switches : t -> int

val bump_access_violations : t -> unit
val access_violations : t -> int

val bump_ptw_fetches : t -> unit
val ptw_fetches : t -> int

val bump_page_faults : t -> unit
val page_faults : t -> int

val bump_page_evictions : t -> unit
val page_evictions : t -> int

val bump_channel_ops : t -> unit
(** One I/O channel operation started (SIOC/SIOT).  The arena bills
    these against a tenant's I/O quota; outside the arena they are
    plain observability. *)

val channel_ops : t -> int

(** {2 Host-side associative memories}

    Hit/miss/eviction rates of the simulator's caches (SDW cache, PTW
    TLB, decoded-instruction cache).  These observe the host-side
    memoization layer only: they move freely without affecting the
    modeled cycle accounting above. *)

val bump_sdw_cache_hits : t -> unit
val sdw_cache_hits : t -> int

val bump_sdw_cache_misses : t -> unit
val sdw_cache_misses : t -> int

val bump_sdw_cache_evictions : t -> unit
val sdw_cache_evictions : t -> int

val bump_ptw_tlb_hits : t -> unit
val ptw_tlb_hits : t -> int

val bump_ptw_tlb_misses : t -> unit
val ptw_tlb_misses : t -> int

val bump_ptw_tlb_evictions : t -> unit
val ptw_tlb_evictions : t -> int

val bump_icache_hits : t -> unit
val icache_hits : t -> int

val bump_icache_misses : t -> unit
val icache_misses : t -> int

val bump_icache_evictions : t -> unit
val icache_evictions : t -> int

(** {2 Fault injection and recovery}

    What the injector ({!Hw.Inject}) did to the machine and what the
    kernel did about it.  [injected] counts delivered faults and
    stalls; [retried] transfers re-armed with backoff; [recovered]
    faults scrubbed and resumed; [quarantined] processes killed for
    exhausting their fault budget; [degraded] cache subsystems dropped
    to uncached operation after coherence damage. *)

val bump_injected : t -> unit
val injected : t -> int

val bump_retried : t -> unit
val retried : t -> int

val bump_recovered : t -> unit
val recovered : t -> int

val bump_quarantined : t -> unit
val quarantined : t -> int

val bump_degraded : t -> unit
val degraded : t -> int

(** {2 Checkpoint/restore and the dispatcher watchdog}

    [snapshots_written] images captured — full and delta alike
    (bumped before serializing, so the count inside an image already
    includes it; rolled back if serialization fails, so a failed
    capture never inflates it); [restores] images
    applied; [restore_audit_rejections] images refused by the restore-
    time SDW audit; [journal_replays_skipped] device transfers found
    already journalled and not re-emitted; [watchdog_tripped] processes
    quarantined by the dispatcher's instruction-budget watchdog.
    [restores] and [journal_replays_skipped] are session-local — they
    differ between an uninterrupted run and a resumed one; everything
    else is checkpoint-deterministic. *)

val bump_snapshots_written : t -> unit
val snapshots_written : t -> int

val bump_restores : t -> unit
val restores : t -> int

val bump_restore_audit_rejections : t -> unit
val restore_audit_rejections : t -> int

val bump_journal_replays_skipped : t -> unit
val journal_replays_skipped : t -> int

val bump_watchdog_tripped : t -> unit
val watchdog_tripped : t -> int

(** {2 Trace-pipeline self-observation}

    What the tracing subsystem itself discarded: [events_dropped]
    events overwritten because the ring buffer was full,
    [events_sampled_out] and [spans_sampled_out] events/spans
    deselected by the deterministic 1-in-N sampler.  These move only
    while tracing is enabled, so untraced runs are unaffected. *)

val bump_events_dropped : t -> unit
val events_dropped : t -> int

val bump_events_sampled_out : t -> unit
val events_sampled_out : t -> int

val bump_spans_sampled_out : t -> unit
val spans_sampled_out : t -> int

(** {1 Snapshots} *)

type snapshot = {
  cycles : int;
  instructions : int;
  memory_reads : int;
  memory_writes : int;
  sdw_fetches : int;
  indirections : int;
  traps : int;
  calls_same_ring : int;
  calls_downward : int;
  calls_upward : int;
  returns_same_ring : int;
  returns_upward : int;
  returns_downward : int;
  gatekeeper_entries : int;
  descriptor_switches : int;
  access_violations : int;
  ptw_fetches : int;
  page_faults : int;
  page_evictions : int;
  channel_ops : int;
  sdw_cache_hits : int;
  sdw_cache_misses : int;
  sdw_cache_evictions : int;
  ptw_tlb_hits : int;
  ptw_tlb_misses : int;
  ptw_tlb_evictions : int;
  icache_hits : int;
  icache_misses : int;
  icache_evictions : int;
  injected : int;
  retried : int;
  recovered : int;
  quarantined : int;
  degraded : int;
  snapshots_written : int;
  restores : int;
  restore_audit_rejections : int;
  journal_replays_skipped : int;
  watchdog_tripped : int;
  events_dropped : int;
  events_sampled_out : int;
  spans_sampled_out : int;
}

val snapshot : t -> snapshot

val restore : t -> snapshot -> unit
(** Overwrite every live counter with the snapshot's values — the
    checkpoint/restore path re-seating the modeled clock and event
    counts captured in an image. *)

val diff : before:snapshot -> after:snapshot -> snapshot
(** [diff ~before ~after] is the per-field difference, for measuring a
    region of execution. *)

val add : snapshot -> snapshot -> snapshot
(** [add a b] is the per-field (pointwise) sum.  Commutative and
    associative, so folding per-shard or per-run snapshots into one
    fleet total gives the same result in any order. *)

val fields : snapshot -> (string * int) list
(** Every snapshot field as [(name, value)], in declaration order.
    The metrics exporters and their coverage test iterate this, so a
    new counter is exported everywhere by extending the one list. *)

val of_fields : (string * int) list -> (snapshot, string) result
(** Inverse of {!fields}: rebuild a snapshot from named pairs.  The
    names must match {!fields}'s output exactly (same set, same
    order) — a mismatch is a decode error, as raised when a snapshot
    image was written by a build with a different counter set.  The
    error text names every unknown and missing field, so schema drift
    between builds is reported, never silently dropped. *)

val pp_snapshot : Format.formatter -> snapshot -> unit
