(* [Recovery] is not a control transfer: it brackets the interval from
   an injected fault's delivery to the kernel's recovery decision, so
   recovery latency flows through the same span plumbing (histograms,
   Chrome trace, metrics exporters) as ring crossings. *)
type crossing = Same_ring | Downward | Upward | Recovery

type t =
  | Instruction of { ring : int; segno : int; wordno : int; text : string }
  | Call of {
      crossing : crossing;
      from_ring : int;
      to_ring : int;
      segno : int;
      wordno : int;
    }
  | Return of {
      crossing : crossing;
      from_ring : int;
      to_ring : int;
      segno : int;
      wordno : int;
    }
  | Trap of { ring : int; cause : string }
  | Gatekeeper of { action : string }
  | Descriptor_switch of { from_ring : int; to_ring : int }
  | Note of string

type stamped = { seq : int; cycles : int; event : t }

let default_capacity = 65536
let dummy = { seq = -1; cycles = 0; event = Note "" }

(* A bounded circular buffer of stamped events.  [buf] is allocated
   lazily on the first record so a disabled log — every machine the
   benches create — costs one empty array and a bool test.  [head] is
   the oldest retained entry, [len] the retained count; once [len]
   reaches [capacity] each record overwrites the oldest and bumps
   [dropped].  [seq] keeps counting across drops, so exported events
   reveal gaps. *)
type log = {
  mutable enabled : bool;
  mutable clock : unit -> int;
  mutable capacity : int;
  mutable buf : stamped array;
  mutable head : int;
  mutable len : int;
  mutable next_seq : int;
  mutable dropped : int;
}

let create_log ?(capacity = default_capacity) () =
  if capacity < 1 then invalid_arg "Event.create_log: capacity < 1";
  {
    enabled = false;
    clock = (fun () -> 0);
    capacity;
    buf = [||];
    head = 0;
    len = 0;
    next_seq = 0;
    dropped = 0;
  }

let enabled log = log.enabled
let set_enabled log b = log.enabled <- b
let set_clock log f = log.clock <- f
let capacity log = log.capacity
let dropped log = log.dropped
let recorded log = log.next_seq

let clear log =
  log.head <- 0;
  log.len <- 0;
  log.next_seq <- 0;
  log.dropped <- 0

let set_capacity log capacity =
  if capacity < 1 then invalid_arg "Event.set_capacity: capacity < 1";
  log.capacity <- capacity;
  log.buf <- [||];
  clear log

let record log e =
  if log.enabled then begin
    if Array.length log.buf = 0 then log.buf <- Array.make log.capacity dummy;
    let slot =
      if log.len < log.capacity then begin
        let i = log.head + log.len in
        let i = if i >= log.capacity then i - log.capacity else i in
        log.len <- log.len + 1;
        i
      end
      else begin
        let i = log.head in
        log.head <- (if i + 1 >= log.capacity then 0 else i + 1);
        log.dropped <- log.dropped + 1;
        i
      end
    in
    log.buf.(slot) <- { seq = log.next_seq; cycles = log.clock (); event = e };
    log.next_seq <- log.next_seq + 1
  end

let fold_stamped log ~init ~f =
  let acc = ref init in
  for i = 0 to log.len - 1 do
    let j = log.head + i in
    let j = if j >= log.capacity then j - log.capacity else j in
    acc := f !acc log.buf.(j)
  done;
  !acc

let stamped_events log =
  List.rev (fold_stamped log ~init:[] ~f:(fun acc s -> s :: acc))

let events log =
  List.rev (fold_stamped log ~init:[] ~f:(fun acc s -> s.event :: acc))

(* Checkpoint support: the retained entries with their original stamps
   plus the monotonic counters.  [restore] refills the buffer without
   re-stamping, so sequence numbers and cycle stamps survive a
   checkpoint/restore round-trip exactly. *)
let dump log = (stamped_events log, log.next_seq, log.dropped)

let restore log (entries, next_seq, dropped) =
  let n = List.length entries in
  if n > log.capacity then invalid_arg "Event.restore: entries > capacity";
  clear log;
  if n > 0 && Array.length log.buf = 0 then
    log.buf <- Array.make log.capacity dummy;
  List.iteri (fun i s -> log.buf.(i) <- s) entries;
  log.head <- 0;
  log.len <- n;
  log.next_seq <- next_seq;
  log.dropped <- dropped

let crossing_to_string = function
  | Same_ring -> "same-ring"
  | Downward -> "downward"
  | Upward -> "upward"
  | Recovery -> "recovery"

let pp ppf = function
  | Instruction { ring; segno; wordno; text } ->
      Format.fprintf ppf "[r%d] %d|%06o  %s" ring segno wordno text
  | Call { crossing; from_ring; to_ring; segno; wordno } ->
      Format.fprintf ppf "CALL %s r%d->r%d target %d|%06o"
        (crossing_to_string crossing)
        from_ring to_ring segno wordno
  | Return { crossing; from_ring; to_ring; segno; wordno } ->
      Format.fprintf ppf "RETURN %s r%d->r%d target %d|%06o"
        (crossing_to_string crossing)
        from_ring to_ring segno wordno
  | Trap { ring; cause } -> Format.fprintf ppf "TRAP in r%d: %s" ring cause
  | Gatekeeper { action } -> Format.fprintf ppf "GATEKEEPER: %s" action
  | Descriptor_switch { from_ring; to_ring } ->
      Format.fprintf ppf "DESCRIPTOR SWITCH r%d->r%d" from_ring to_ring
  | Note s -> Format.fprintf ppf "-- %s" s

let pp_log ppf log =
  List.iter (fun e -> Format.fprintf ppf "%a@." pp e) (events log)
