(* [Recovery] is not a control transfer: it brackets the interval from
   an injected fault's delivery to the kernel's recovery decision, so
   recovery latency flows through the same span plumbing (histograms,
   Chrome trace, metrics exporters) as ring crossings. *)
type crossing = Same_ring | Downward | Upward | Recovery

type t =
  | Instruction of { ring : int; segno : int; wordno : int; text : string }
  | Call of {
      crossing : crossing;
      from_ring : int;
      to_ring : int;
      segno : int;
      wordno : int;
    }
  | Return of {
      crossing : crossing;
      from_ring : int;
      to_ring : int;
      segno : int;
      wordno : int;
    }
  | Trap of { ring : int; cause : string }
  | Gatekeeper of { action : string }
  | Descriptor_switch of { from_ring : int; to_ring : int }
  | Note of string

type stamped = { seq : int; cycles : int; event : t }

let default_capacity = 65536

(* Events live as fixed-width integer cells in one preallocated int
   array, so the record path is a handful of unboxed stores — no
   per-event variant allocation, no string formatting.  Cell layout:

     [tag; seq; cycles; a; b; c; d; e]

   with the field meaning per tag:

     0 Instruction        a=ring  b=segno  c=wordno  d=text_id
     1 Call               a=crossing  b=from  c=to  d=segno  e=wordno
     2 Return             a=crossing  b=from  c=to  d=segno  e=wordno
     3 Trap               a=ring  b=cause_id
     4 Gatekeeper         a=action_id
     5 Descriptor_switch  a=from  b=to
     6 Note               a=text_id

   Strings are interned into [strings] (ids stable for the life of the
   log, surviving [clear]); an Instruction recorded on the hot path
   stores text_id = -1 and its disassembly is reconstructed lazily at
   export by [resolver] — re-decoding the word from the segment image —
   so a traced run never formats text it doesn't export. *)
let cell_width = 8

let tag_instruction = 0
and tag_call = 1
and tag_return = 2
and tag_trap = 3
and tag_gatekeeper = 4
and tag_descriptor_switch = 5
and tag_note = 6

let crossing_to_int = function
  | Same_ring -> 0
  | Downward -> 1
  | Upward -> 2
  | Recovery -> 3

let crossing_of_int = function
  | 0 -> Same_ring
  | 1 -> Downward
  | 2 -> Upward
  | 3 -> Recovery
  | n -> invalid_arg (Printf.sprintf "Event.crossing_of_int: %d" n)

(* A bounded circular buffer of cells.  [cells] is allocated lazily on
   the first record so a disabled log — every machine the benches
   create — costs one empty array and a bool test.  [head] is the
   oldest retained slot, [len] the retained count; once [len] reaches
   [capacity] each record overwrites the oldest and bumps [dropped].
   [next_seq] counts every candidate event (retained, overwritten or
   sampled out), so exported sequence numbers reveal gaps from both
   drops and sampling. *)
type log = {
  mutable enabled : bool;
  mutable clock : unit -> int;
  mutable capacity : int;
  mutable cells : int array;
  mutable head : int;
  mutable len : int;
  mutable next_seq : int;
  mutable dropped : int;
  mutable sampled_out : int;
  mutable high_water : int;
  mutable sample_interval : int;
  mutable sample_seed : int;
  (* Separate 1-in-N interval for the instruction stream; 0 means
     "follow sample_interval".  The instruction firehose dwarfs the
     control-flow events, so production configs thin it independently
     while keeping every call/return/trap. *)
  mutable instr_interval : int;
  mutable strings : string array;
  mutable nstrings : int;
  string_ids : (string, int) Hashtbl.t;
  mutable resolver : segno:int -> wordno:int -> string option;
  mutable stats : Counters.t;
}

let no_resolver ~segno:_ ~wordno:_ = None

let create_log ?(capacity = default_capacity) () =
  if capacity < 1 then invalid_arg "Event.create_log: capacity < 1";
  {
    enabled = false;
    clock = (fun () -> 0);
    capacity;
    cells = [||];
    head = 0;
    len = 0;
    next_seq = 0;
    dropped = 0;
    sampled_out = 0;
    high_water = 0;
    sample_interval = 1;
    sample_seed = 0;
    instr_interval = 0;
    strings = [||];
    nstrings = 0;
    string_ids = Hashtbl.create 16;
    resolver = no_resolver;
    stats = Counters.create ();
  }

let enabled log = log.enabled
let set_enabled log b = log.enabled <- b
let set_clock log f = log.clock <- f
let set_text_resolver log f = log.resolver <- f
let set_stats log c = log.stats <- c
let capacity log = log.capacity
let dropped log = log.dropped
let sampled_out log = log.sampled_out
let high_water log = log.high_water
let seen log = log.next_seq
let recorded log = log.next_seq - log.sampled_out
let sample_interval log = log.sample_interval
let sample_seed log = log.sample_seed
let instr_interval log = log.instr_interval

(* Deterministic 1-in-N selection as a pure function of the candidate's
   sequence number: splitmix-style finalizer over (seq, seed), so the
   same seeded workload selects the same events on every run, on every
   shard, regardless of what else the process traced.  No sampler state
   exists beyond (interval, seed), so checkpoints carry it trivially.
   The multiplier fits OCaml's 63-bit native int. *)
let sample_hit ~interval ~seed seq =
  interval <= 1
  ||
  let h = (seq + 1) * (seed lor 1) in
  let h = h lxor (h lsr 33) in
  let h = h * 0x2545F4914F6CDD1D in
  let h = h lxor (h lsr 29) in
  h land max_int mod interval = 0

let set_sampling log ~interval ~seed =
  if interval < 1 then invalid_arg "Event.set_sampling: interval < 1";
  log.sample_interval <- interval;
  log.sample_seed <- seed

let set_instr_sampling log ~interval =
  if interval < 0 then invalid_arg "Event.set_instr_sampling: interval < 0";
  log.instr_interval <- interval

let clear log =
  log.head <- 0;
  log.len <- 0;
  log.next_seq <- 0;
  log.dropped <- 0;
  log.sampled_out <- 0;
  log.high_water <- 0

let set_capacity log capacity =
  if capacity < 1 then invalid_arg "Event.set_capacity: capacity < 1";
  log.capacity <- capacity;
  log.cells <- [||];
  clear log

let intern log s =
  match Hashtbl.find_opt log.string_ids s with
  | Some i -> i
  | None ->
      let i = log.nstrings in
      if i >= Array.length log.strings then begin
        let cap = max 16 (2 * Array.length log.strings) in
        let a = Array.make cap "" in
        Array.blit log.strings 0 a 0 i;
        log.strings <- a
      end;
      log.strings.(i) <- s;
      log.nstrings <- i + 1;
      Hashtbl.add log.string_ids s i;
      i

(* Consume one sequence number; say whether the sampler keeps it. *)
let admit log =
  let seq = log.next_seq in
  log.next_seq <- seq + 1;
  if sample_hit ~interval:log.sample_interval ~seed:log.sample_seed seq then
    seq
  else begin
    log.sampled_out <- log.sampled_out + 1;
    Counters.bump_events_sampled_out log.stats;
    -1
  end

(* Same, through the instruction-stream interval.  Sequence numbers
   stay shared with the control-flow events — one monotonic stream —
   so exported gaps remain interpretable whichever sampler dropped
   the candidate. *)
let admit_instr log =
  let seq = log.next_seq in
  log.next_seq <- seq + 1;
  let interval =
    if log.instr_interval = 0 then log.sample_interval
    else log.instr_interval
  in
  if sample_hit ~interval ~seed:log.sample_seed seq then seq
  else begin
    log.sampled_out <- log.sampled_out + 1;
    Counters.bump_events_sampled_out log.stats;
    -1
  end

(* Reserve the next slot (overwriting the oldest when full) and return
   its cell base. *)
let claim log =
  if Array.length log.cells = 0 then
    log.cells <- Array.make (log.capacity * cell_width) 0;
  let slot =
    if log.len < log.capacity then begin
      let i = log.head + log.len in
      let i = if i >= log.capacity then i - log.capacity else i in
      log.len <- log.len + 1;
      if log.len > log.high_water then log.high_water <- log.len;
      i
    end
    else begin
      let i = log.head in
      log.head <- (if i + 1 >= log.capacity then 0 else i + 1);
      log.dropped <- log.dropped + 1;
      Counters.bump_events_dropped log.stats;
      i
    end
  in
  slot * cell_width

let fill log base ~tag ~seq ~a ~b ~c ~d ~e =
  let cells = log.cells in
  cells.(base) <- tag;
  cells.(base + 1) <- seq;
  cells.(base + 2) <- log.clock ();
  cells.(base + 3) <- a;
  cells.(base + 4) <- b;
  cells.(base + 5) <- c;
  cells.(base + 6) <- d;
  cells.(base + 7) <- e

(* The hot path: [Isa.Cpu.step] calls this once per retired
   instruction when tracing is on.  Everything is an unboxed int store;
   the disassembly is deferred (text_id = -1) until export. *)
let record_instruction log ~ring ~segno ~wordno =
  if log.enabled then begin
    let seq = admit_instr log in
    if seq >= 0 then
      fill log (claim log) ~tag:tag_instruction ~seq ~a:ring ~b:segno
        ~c:wordno ~d:(-1) ~e:0
  end

let record_call log ~crossing ~from_ring ~to_ring ~segno ~wordno =
  if log.enabled then begin
    let seq = admit log in
    if seq >= 0 then
      fill log (claim log) ~tag:tag_call ~seq ~a:(crossing_to_int crossing)
        ~b:from_ring ~c:to_ring ~d:segno ~e:wordno
  end

let record_return log ~crossing ~from_ring ~to_ring ~segno ~wordno =
  if log.enabled then begin
    let seq = admit log in
    if seq >= 0 then
      fill log (claim log) ~tag:tag_return ~seq ~a:(crossing_to_int crossing)
        ~b:from_ring ~c:to_ring ~d:segno ~e:wordno
  end

let record_trap log ~ring ~cause =
  if log.enabled then begin
    let seq = admit log in
    if seq >= 0 then begin
      let id = intern log cause in
      fill log (claim log) ~tag:tag_trap ~seq ~a:ring ~b:id ~c:0 ~d:0 ~e:0
    end
  end

let record_gatekeeper log ~action =
  if log.enabled then begin
    let seq = admit log in
    if seq >= 0 then begin
      let id = intern log action in
      fill log (claim log) ~tag:tag_gatekeeper ~seq ~a:id ~b:0 ~c:0 ~d:0 ~e:0
    end
  end

let record_descriptor_switch log ~from_ring ~to_ring =
  if log.enabled then begin
    let seq = admit log in
    if seq >= 0 then
      fill log (claim log) ~tag:tag_descriptor_switch ~seq ~a:from_ring
        ~b:to_ring ~c:0 ~d:0 ~e:0
  end

let record_note log text =
  if log.enabled then begin
    let seq = admit log in
    if seq >= 0 then begin
      let id = intern log text in
      fill log (claim log) ~tag:tag_note ~seq ~a:id ~b:0 ~c:0 ~d:0 ~e:0
    end
  end

(* Compatibility entry point over the variant view — used by tests and
   by [restore]'s re-encoder, never by the hot path.  An [Instruction]
   arriving with pre-formatted text keeps it (interned), so round-trips
   through [dump]/[restore] pin the text resolved at dump time. *)
let record log e =
  if log.enabled then
    match e with
    | Instruction { ring; segno; wordno; text } ->
        let seq = admit_instr log in
        if seq >= 0 then begin
          let id = intern log text in
          fill log (claim log) ~tag:tag_instruction ~seq ~a:ring ~b:segno
            ~c:wordno ~d:id ~e:0
        end
    | Call { crossing; from_ring; to_ring; segno; wordno } ->
        record_call log ~crossing ~from_ring ~to_ring ~segno ~wordno
    | Return { crossing; from_ring; to_ring; segno; wordno } ->
        record_return log ~crossing ~from_ring ~to_ring ~segno ~wordno
    | Trap { ring; cause } -> record_trap log ~ring ~cause
    | Gatekeeper { action } -> record_gatekeeper log ~action
    | Descriptor_switch { from_ring; to_ring } ->
        record_descriptor_switch log ~from_ring ~to_ring
    | Note s -> record_note log s

let instruction_text log ~segno ~wordno id =
  if id >= 0 then log.strings.(id)
  else
    match log.resolver ~segno ~wordno with Some s -> s | None -> "?"

let event_of_cells log base =
  let g i = log.cells.(base + i) in
  match g 0 with
  | 0 (* tag_instruction *) ->
      let segno = g 4 and wordno = g 5 in
      Instruction
        {
          ring = g 3;
          segno;
          wordno;
          text = instruction_text log ~segno ~wordno (g 6);
        }
  | 1 (* tag_call *) ->
      Call
        {
          crossing = crossing_of_int (g 3);
          from_ring = g 4;
          to_ring = g 5;
          segno = g 6;
          wordno = g 7;
        }
  | 2 (* tag_return *) ->
      Return
        {
          crossing = crossing_of_int (g 3);
          from_ring = g 4;
          to_ring = g 5;
          segno = g 6;
          wordno = g 7;
        }
  | 3 (* tag_trap *) -> Trap { ring = g 3; cause = log.strings.(g 4) }
  | 4 (* tag_gatekeeper *) -> Gatekeeper { action = log.strings.(g 3) }
  | 5 (* tag_descriptor_switch *) ->
      Descriptor_switch { from_ring = g 3; to_ring = g 4 }
  | 6 (* tag_note *) -> Note log.strings.(g 3)
  | tag -> invalid_arg (Printf.sprintf "Event.event_of_cells: tag %d" tag)

let fold_stamped log ~init ~f =
  let acc = ref init in
  for i = 0 to log.len - 1 do
    let j = log.head + i in
    let j = if j >= log.capacity then j - log.capacity else j in
    let base = j * cell_width in
    acc :=
      f !acc
        {
          seq = log.cells.(base + 1);
          cycles = log.cells.(base + 2);
          event = event_of_cells log base;
        }
  done;
  !acc

let stamped_events log =
  List.rev (fold_stamped log ~init:[] ~f:(fun acc s -> s :: acc))

let events log =
  List.rev (fold_stamped log ~init:[] ~f:(fun acc s -> s.event :: acc))

(* Checkpoint support.  [dump] resolves instruction text eagerly (via
   {!stamped_events}), so what a checkpoint pins is what the trace
   showed at capture time; [restore] re-encodes the entries — interning
   that resolved text — without re-stamping or re-sampling, so sequence
   numbers, cycle stamps, sampler configuration and discard counters
   all survive a round-trip exactly. *)
type dump = {
  d_entries : stamped list;
  d_next_seq : int;
  d_dropped : int;
  d_sampled_out : int;
  d_high_water : int;
  d_sample_interval : int;
  d_sample_seed : int;
  d_instr_interval : int;
}

let dump log =
  {
    d_entries = stamped_events log;
    d_next_seq = log.next_seq;
    d_dropped = log.dropped;
    d_sampled_out = log.sampled_out;
    d_high_water = log.high_water;
    d_sample_interval = log.sample_interval;
    d_sample_seed = log.sample_seed;
    d_instr_interval = log.instr_interval;
  }

let encode_at log slot s =
  let base = slot * cell_width in
  let cells = log.cells in
  let set ~tag ~a ~b ~c ~d ~e =
    cells.(base) <- tag;
    cells.(base + 1) <- s.seq;
    cells.(base + 2) <- s.cycles;
    cells.(base + 3) <- a;
    cells.(base + 4) <- b;
    cells.(base + 5) <- c;
    cells.(base + 6) <- d;
    cells.(base + 7) <- e
  in
  match s.event with
  | Instruction { ring; segno; wordno; text } ->
      set ~tag:tag_instruction ~a:ring ~b:segno ~c:wordno
        ~d:(intern log text) ~e:0
  | Call { crossing; from_ring; to_ring; segno; wordno } ->
      set ~tag:tag_call ~a:(crossing_to_int crossing) ~b:from_ring ~c:to_ring
        ~d:segno ~e:wordno
  | Return { crossing; from_ring; to_ring; segno; wordno } ->
      set ~tag:tag_return ~a:(crossing_to_int crossing) ~b:from_ring
        ~c:to_ring ~d:segno ~e:wordno
  | Trap { ring; cause } ->
      set ~tag:tag_trap ~a:ring ~b:(intern log cause) ~c:0 ~d:0 ~e:0
  | Gatekeeper { action } ->
      set ~tag:tag_gatekeeper ~a:(intern log action) ~b:0 ~c:0 ~d:0 ~e:0
  | Descriptor_switch { from_ring; to_ring } ->
      set ~tag:tag_descriptor_switch ~a:from_ring ~b:to_ring ~c:0 ~d:0 ~e:0
  | Note text -> set ~tag:tag_note ~a:(intern log text) ~b:0 ~c:0 ~d:0 ~e:0

let restore log d =
  let n = List.length d.d_entries in
  if n > log.capacity then invalid_arg "Event.restore: entries > capacity";
  if d.d_sample_interval < 1 then
    invalid_arg "Event.restore: sample_interval < 1";
  if d.d_instr_interval < 0 then
    invalid_arg "Event.restore: instr_interval < 0";
  clear log;
  if n > 0 && Array.length log.cells = 0 then
    log.cells <- Array.make (log.capacity * cell_width) 0;
  List.iteri (fun i s -> encode_at log i s) d.d_entries;
  log.head <- 0;
  log.len <- n;
  log.next_seq <- d.d_next_seq;
  log.dropped <- d.d_dropped;
  log.sampled_out <- d.d_sampled_out;
  log.high_water <- d.d_high_water;
  log.sample_interval <- d.d_sample_interval;
  log.sample_seed <- d.d_sample_seed;
  log.instr_interval <- d.d_instr_interval

let crossing_to_string = function
  | Same_ring -> "same-ring"
  | Downward -> "downward"
  | Upward -> "upward"
  | Recovery -> "recovery"

let pp ppf = function
  | Instruction { ring; segno; wordno; text } ->
      Format.fprintf ppf "[r%d] %d|%06o  %s" ring segno wordno text
  | Call { crossing; from_ring; to_ring; segno; wordno } ->
      Format.fprintf ppf "CALL %s r%d->r%d target %d|%06o"
        (crossing_to_string crossing)
        from_ring to_ring segno wordno
  | Return { crossing; from_ring; to_ring; segno; wordno } ->
      Format.fprintf ppf "RETURN %s r%d->r%d target %d|%06o"
        (crossing_to_string crossing)
        from_ring to_ring segno wordno
  | Trap { ring; cause } -> Format.fprintf ppf "TRAP in r%d: %s" ring cause
  | Gatekeeper { action } -> Format.fprintf ppf "GATEKEEPER: %s" action
  | Descriptor_switch { from_ring; to_ring } ->
      Format.fprintf ppf "DESCRIPTOR SWITCH r%d->r%d" from_ring to_ring
  | Note s -> Format.fprintf ppf "-- %s" s

let pp_log ppf log =
  List.iter (fun e -> Format.fprintf ppf "%a@." pp e) (events log)
