(** Per-tenant counter attribution for the multi-tenant arena.

    The machine has one {!Counters.t}; the arena multiplexes many
    tenants over it.  The dispatcher snapshots the counters around
    each tenant's slice and charges the difference here, so every
    cycle, fault and channel operation the machine counted is
    attributed to exactly one tenant.  Bills accumulate with
    {!Counters.add} (commutative, associative), and {!fold} walks
    tenants in ascending id — the billing report is therefore
    independent of slice interleaving and of how waves were spread
    over domains. *)

type t

val create : unit -> t

val charge : t -> tenant:int -> Counters.snapshot -> unit
(** [charge t ~tenant d] adds the per-slice counter delta [d] to the
    tenant's running bill. *)

val bill : t -> tenant:int -> Counters.snapshot
(** The tenant's accumulated bill; all-zero for a tenant never
    charged. *)

val tenants : t -> int list
(** Every tenant ever charged, in ascending id. *)

val fold : t -> init:'a -> f:('a -> int -> Counters.snapshot -> 'a) -> 'a
(** Fold over [(tenant, bill)] in ascending tenant id. *)

val total : t -> Counters.snapshot
(** Sum of every bill — what the whole arena cost. *)
