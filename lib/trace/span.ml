(* Call/return spans over the simulated call stack.

   Every CALL that transfers control opens a span; the RETURN that
   undoes it closes the innermost open span — the calling conventions
   are strictly LIFO, so matching is a stack.  A crossing that never
   returns (a fault that terminates the process, a trace that stops
   mid-call) is closed by [drain] with [forced = true] so exporters
   see a complete interval set.

   Closed spans feed two sinks: a per-crossing-kind latency histogram
   (always, cheap, deterministic percentiles) and a bounded ring
   buffer of completed spans for the Chrome-trace exporter (lazily
   allocated, oldest dropped first). *)

type completed = {
  kind : Event.crossing;
  from_ring : int;
  to_ring : int;
  segno : int;
  wordno : int;
  start_cycles : int;
  end_cycles : int;
  depth : int;
  seq : int;
  forced : bool;
}

type open_span = {
  o_kind : Event.crossing;
  o_from_ring : int;
  o_to_ring : int;
  o_segno : int;
  o_wordno : int;
  o_start : int;
  o_depth : int;
  o_seq : int;
}

let default_capacity = 65536

type tracker = {
  mutable enabled : bool;
  mutable stack : open_span list;
  mutable next_seq : int;
  mutable capacity : int;
  mutable buf : completed array;
  mutable head : int;
  mutable len : int;
  mutable dropped : int;
  mutable unmatched_returns : int;
  mutable sampled_out : int;
  mutable sample_interval : int;
  mutable sample_seed : int;
  mutable stats : Counters.t;
  (* Which protection backend produced these spans ("hw", "645",
     "cap") — a label only: set once by the machine at creation,
     surfaced by the exporters so crossing spans from different
     backends are distinguishable in one merged trace. *)
  mutable backend : string;
  hist_same : Histogram.t;
  hist_down : Histogram.t;
  hist_up : Histogram.t;
  hist_recovery : Histogram.t;
}

let dummy =
  {
    kind = Event.Same_ring;
    from_ring = 0;
    to_ring = 0;
    segno = 0;
    wordno = 0;
    start_cycles = 0;
    end_cycles = 0;
    depth = 0;
    seq = -1;
    forced = false;
  }

let create ?(capacity = default_capacity) () =
  if capacity < 1 then invalid_arg "Span.create: capacity < 1";
  {
    enabled = false;
    stack = [];
    next_seq = 0;
    capacity;
    buf = [||];
    head = 0;
    len = 0;
    dropped = 0;
    unmatched_returns = 0;
    sampled_out = 0;
    sample_interval = 1;
    sample_seed = 0;
    stats = Counters.create ();
    backend = "hw";
    hist_same = Histogram.create ();
    hist_down = Histogram.create ();
    hist_up = Histogram.create ();
    hist_recovery = Histogram.create ();
  }

let enabled t = t.enabled
let set_enabled t b = t.enabled <- b
let set_stats t c = t.stats <- c
let backend t = t.backend
let set_backend t b = t.backend <- b
let dropped t = t.dropped
let unmatched_returns t = t.unmatched_returns
let sampled_out t = t.sampled_out
let sample_interval t = t.sample_interval
let sample_seed t = t.sample_seed

let set_sampling t ~interval ~seed =
  if interval < 1 then invalid_arg "Span.set_sampling: interval < 1";
  t.sample_interval <- interval;
  t.sample_seed <- seed

let open_depth t = List.length t.stack

let histogram t = function
  | Event.Same_ring -> t.hist_same
  | Event.Downward -> t.hist_down
  | Event.Upward -> t.hist_up
  | Event.Recovery -> t.hist_recovery

let clear t =
  t.stack <- [];
  t.next_seq <- 0;
  t.head <- 0;
  t.len <- 0;
  t.dropped <- 0;
  t.unmatched_returns <- 0;
  t.sampled_out <- 0;
  Histogram.clear t.hist_same;
  Histogram.clear t.hist_down;
  Histogram.clear t.hist_up;
  Histogram.clear t.hist_recovery

let push_completed t c =
  if Array.length t.buf = 0 then t.buf <- Array.make t.capacity dummy;
  let slot =
    if t.len < t.capacity then begin
      let i = t.head + t.len in
      let i = if i >= t.capacity then i - t.capacity else i in
      t.len <- t.len + 1;
      i
    end
    else begin
      let i = t.head in
      t.head <- (if i + 1 >= t.capacity then 0 else i + 1);
      t.dropped <- t.dropped + 1;
      i
    end
  in
  t.buf.(slot) <- c

let open_span t ~kind ~from_ring ~to_ring ~segno ~wordno ~cycles =
  if t.enabled then begin
    t.stack <-
      {
        o_kind = kind;
        o_from_ring = from_ring;
        o_to_ring = to_ring;
        o_segno = segno;
        o_wordno = wordno;
        o_start = cycles;
        o_depth = List.length t.stack;
        o_seq = t.next_seq;
      }
      :: t.stack;
    t.next_seq <- t.next_seq + 1
  end

(* Sampling applies at completion, not at open: the LIFO stack is
   always fully maintained (matching must see every call), and whether
   a finished span is kept is a pure hash of its open-order sequence
   number — the same seeded workload keeps the same spans on every run
   and every shard.  A sampled-out span skips both sinks (histogram
   and ring buffer), so sampled percentiles are computed over the
   selected subset. *)
let complete t o ~cycles ~forced =
  if Event.sample_hit ~interval:t.sample_interval ~seed:t.sample_seed o.o_seq
  then begin
    let c =
      {
        kind = o.o_kind;
        from_ring = o.o_from_ring;
        to_ring = o.o_to_ring;
        segno = o.o_segno;
        wordno = o.o_wordno;
        start_cycles = o.o_start;
        end_cycles = cycles;
        depth = o.o_depth;
        seq = o.o_seq;
        forced;
      }
    in
    Histogram.observe (histogram t o.o_kind) (cycles - o.o_start);
    push_completed t c
  end
  else begin
    t.sampled_out <- t.sampled_out + 1;
    Counters.bump_spans_sampled_out t.stats
  end

(* [kind]: what the closer believes it is undoing.  The outward-return
   mechanism bounces through an intermediate hardware upward return (to
   the return-gate trampoline) before the gate closes the crossing, so
   a kind-blind close would end the outward span early and leave the
   gate's close unmatched.  A close whose expected kind disagrees with
   the innermost open span is part of such a mechanism, not the
   matching return — leave the span open. *)
let close_span ?kind t ~cycles =
  if t.enabled then
    match t.stack with
    | [] -> t.unmatched_returns <- t.unmatched_returns + 1
    | o :: rest -> (
        match kind with
        | Some k when k <> o.o_kind -> ()
        | _ ->
            t.stack <- rest;
            complete t o ~cycles ~forced:false)

let drain t ~cycles =
  List.iter (fun o -> complete t o ~cycles ~forced:true) t.stack;
  t.stack <- []

let completed t =
  let acc = ref [] in
  for i = t.len - 1 downto 0 do
    let j = t.head + i in
    let j = if j >= t.capacity then j - t.capacity else j in
    acc := t.buf.(j) :: !acc
  done;
  !acc

(* Checkpoint support.  The whole tracker state round-trips: open
   spans (innermost first, as stacked), retained completed spans,
   monotonic counters, and all four latency histograms. *)
type dump = {
  dump_stack : open_span list;
  dump_next_seq : int;
  dump_completed : completed list;
  dump_dropped : int;
  dump_unmatched : int;
  dump_sampled_out : int;
  dump_sample_interval : int;
  dump_sample_seed : int;
  dump_hists : (int array * int * int * int * int) array;
      (* same, down, up, recovery *)
}

let dump t =
  {
    dump_stack = t.stack;
    dump_next_seq = t.next_seq;
    dump_completed = completed t;
    dump_dropped = t.dropped;
    dump_unmatched = t.unmatched_returns;
    dump_sampled_out = t.sampled_out;
    dump_sample_interval = t.sample_interval;
    dump_sample_seed = t.sample_seed;
    dump_hists =
      [|
        Histogram.dump t.hist_same;
        Histogram.dump t.hist_down;
        Histogram.dump t.hist_up;
        Histogram.dump t.hist_recovery;
      |];
  }

let restore t d =
  if List.length d.dump_completed > t.capacity then
    invalid_arg "Span.restore: completed spans > capacity";
  if Array.length d.dump_hists <> 4 then
    invalid_arg "Span.restore: expected four histograms";
  if d.dump_sample_interval < 1 then
    invalid_arg "Span.restore: sample_interval < 1";
  clear t;
  t.stack <- d.dump_stack;
  t.next_seq <- d.dump_next_seq;
  List.iter (fun c -> push_completed t c) d.dump_completed;
  t.dropped <- d.dump_dropped;
  t.unmatched_returns <- d.dump_unmatched;
  t.sampled_out <- d.dump_sampled_out;
  t.sample_interval <- d.dump_sample_interval;
  t.sample_seed <- d.dump_sample_seed;
  Histogram.restore t.hist_same d.dump_hists.(0);
  Histogram.restore t.hist_down d.dump_hists.(1);
  Histogram.restore t.hist_up d.dump_hists.(2);
  Histogram.restore t.hist_recovery d.dump_hists.(3)
