(** Per-ring and per-segment modeled-cycle and instruction accounting.

    When enabled, the CPU attributes each retired instruction's cycle
    delta (including any trap-entry cost it incurred) to the ring and
    segment it was fetched from, and the OS substrate attributes
    host-side fault handling — the gatekeeper — to a separate kernel
    bucket.  Everything here is modeled cycles: deterministic and
    host-independent, so profiles diff cleanly across runs. *)

type t

val create : rings:int -> unit -> t
(** [rings] buckets (ring numbers [0 .. rings-1]). *)

val enabled : t -> bool

val set_enabled : t -> bool -> unit
(** Created disabled; the disabled path is one bool test per
    instruction. *)

val attribute :
  t -> ring:int -> segno:int -> cycles:int -> instructions:int -> unit
(** Charge [cycles] and [instructions] (0 when the step faulted before
    retiring) to the ring and segment buckets. *)

val attribute_kernel : t -> cycles:int -> unit
(** Gatekeeper/supervisor work performed outside any simulated
    instruction (host-side fault handling). *)

val per_ring : t -> (int * int * int) list
(** [(ring, cycles, instructions)] for each ring with activity,
    ascending by ring. *)

val per_segment : t -> (int * int * int) list
(** [(segno, cycles, instructions)], ascending by segment number. *)

val kernel_cycles : t -> int

val total_cycles : t -> int
(** Sum of all ring buckets plus the kernel bucket. *)

val clear : t -> unit

val merge_into : dst:t -> t -> unit
(** [merge_into ~dst src] adds [src]'s ring, segment and kernel
    buckets into [dst] pointwise (aggregating per-shard profiles into
    one fleet profile; commutative, so shard order does not matter).
    [src] is unchanged.  Raises [Invalid_argument] if the ring counts
    differ. *)

val dump : t -> int array * int array * (int * int * int) list * int
(** Checkpoint support: [(ring_cycles, ring_instructions,
    per_segment, kernel_cycles)] with segments ascending by number. *)

val restore : t -> int array * int array * (int * int * int) list * int -> unit
(** Inverse of {!dump}; raises [Invalid_argument] if the ring arrays
    are the wrong size for this profile. *)
