(** Structured execution-trace events.

    When tracing is enabled the CPU and the operating-system substrate
    append one event per noteworthy action.  Examples and the [ringsim]
    binary render these for human consumption; tests assert on the
    event sequence to pin down behaviour such as "exactly one trap was
    taken, and it was an upward-call trap".

    The log is a {e bounded ring buffer}: each recorded event is
    stamped with the modeled cycle count (via the log's clock) and a
    monotonically increasing sequence number.  Once the buffer is full
    the oldest events are overwritten and counted in {!dropped} —
    long traffic runs can keep tracing on without unbounded growth. *)

type crossing = Same_ring | Downward | Upward | Recovery
(** [Recovery] is not a control transfer: it brackets an injected
    fault's delivery to the kernel's recovery decision, so recovery
    latency rides the same span plumbing as ring crossings. *)

type t =
  | Instruction of { ring : int; segno : int; wordno : int; text : string }
      (** One instruction retired, with its disassembly. *)
  | Call of {
      crossing : crossing;
      from_ring : int;
      to_ring : int;
      segno : int;
      wordno : int;
    }
  | Return of {
      crossing : crossing;
      from_ring : int;
      to_ring : int;
      segno : int;
      wordno : int;
    }
  | Trap of { ring : int; cause : string }
  | Gatekeeper of { action : string }
  | Descriptor_switch of { from_ring : int; to_ring : int }
  | Note of string

type stamped = { seq : int; cycles : int; event : t }
(** An event as retained in the log: [seq] is its position in the
    record order (monotonic, never reused, gaps reveal drops) and
    [cycles] the modeled cycle count at record time. *)

type log

val default_capacity : int
(** 65536 events. *)

val create_log : ?capacity:int -> unit -> log
(** Logs are created disabled, with an unallocated buffer: a log that
    is never enabled costs nothing beyond the record.  Raises
    [Invalid_argument] if [capacity < 1]. *)

val enabled : log -> bool

val set_enabled : log -> bool -> unit
(** Logs are created disabled so that the common benchmarking path
    pays nothing for tracing. *)

val set_clock : log -> (unit -> int) -> unit
(** The timestamp source, sampled at each record.  The machine points
    this at its modeled cycle counter; the default clock returns 0. *)

val set_capacity : log -> int -> unit
(** Resize the ring buffer.  Clears the log. *)

val capacity : log -> int

val record : log -> t -> unit

val events : log -> t list
(** Retained events in the order they were recorded (oldest first; up
    to [capacity], earlier ones having been dropped). *)

val stamped_events : log -> stamped list
(** Like {!events} but with stamps. *)

val fold_stamped : log -> init:'a -> f:('a -> stamped -> 'a) -> 'a
(** Fold over retained events oldest-first without building a list. *)

val dropped : log -> int
(** Events overwritten because the buffer was full. *)

val recorded : log -> int
(** Total events ever recorded ([dropped log + retained]).  Also the
    next sequence number. *)

val clear : log -> unit
(** Drop all events and reset the sequence and dropped counters. *)

val dump : log -> stamped list * int * int
(** Checkpoint support: [(retained_entries, next_seq, dropped)]. *)

val restore : log -> stamped list * int * int -> unit
(** Inverse of {!dump}: refill the buffer with already-stamped entries
    (no re-stamping, so seq numbers and cycle stamps round-trip
    exactly).  Raises [Invalid_argument] if there are more entries
    than the log's capacity. *)

val crossing_to_string : crossing -> string

val pp : Format.formatter -> t -> unit

val pp_log : Format.formatter -> log -> unit
