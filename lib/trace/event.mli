(** Structured execution-trace events at production cost.

    When tracing is enabled the CPU and the operating-system substrate
    append one event per noteworthy action.  Examples and the [ringsim]
    binary render these for human consumption; tests assert on the
    event sequence to pin down behaviour such as "exactly one trap was
    taken, and it was an upward-call trap".

    The log is a {e binary ring buffer}: events are packed as
    fixed-width integer cells in one preallocated int array, so the
    record path is a handful of unboxed stores — no per-event variant
    allocation, and no string formatting.  Instruction disassembly is
    reconstructed lazily at export through a pluggable resolver
    ({!set_text_resolver}) that re-decodes the word from the segment
    image; other strings (trap causes, gatekeeper actions, notes) are
    interned once and referenced by id.  Each recorded event carries
    the modeled cycle count (via the log's clock) and a monotonically
    increasing sequence number.  Once the buffer is full the oldest
    events are overwritten and counted in {!dropped}; with a sampling
    interval above 1 ({!set_sampling}), deselected events are counted
    in {!sampled_out}.  Sequence numbers keep counting across both, so
    exported events reveal gaps — long traffic runs can keep tracing
    on without unbounded growth. *)

type crossing = Same_ring | Downward | Upward | Recovery
(** [Recovery] is not a control transfer: it brackets an injected
    fault's delivery to the kernel's recovery decision, so recovery
    latency rides the same span plumbing as ring crossings. *)

type t =
  | Instruction of { ring : int; segno : int; wordno : int; text : string }
      (** One instruction retired, with its disassembly. *)
  | Call of {
      crossing : crossing;
      from_ring : int;
      to_ring : int;
      segno : int;
      wordno : int;
    }
  | Return of {
      crossing : crossing;
      from_ring : int;
      to_ring : int;
      segno : int;
      wordno : int;
    }
  | Trap of { ring : int; cause : string }
  | Gatekeeper of { action : string }
  | Descriptor_switch of { from_ring : int; to_ring : int }
  | Note of string

type stamped = { seq : int; cycles : int; event : t }
(** An event as decoded from the log: [seq] is its position in the
    record order (monotonic, never reused; gaps reveal drops and
    sampling) and [cycles] the modeled cycle count at record time. *)

type log

val default_capacity : int
(** 65536 events. *)

val create_log : ?capacity:int -> unit -> log
(** Logs are created disabled, with an unallocated arena: a log that
    is never enabled costs nothing beyond the record.  Raises
    [Invalid_argument] if [capacity < 1]. *)

val enabled : log -> bool

val set_enabled : log -> bool -> unit
(** Logs are created disabled so that the common benchmarking path
    pays nothing for tracing. *)

val set_clock : log -> (unit -> int) -> unit
(** The timestamp source, sampled at each record.  The machine points
    this at its modeled cycle counter; the default clock returns 0. *)

val set_text_resolver : log -> (segno:int -> wordno:int -> string option) -> unit
(** The lazy disassembler: given the address an [Instruction] event
    was recorded at, return its disassembly text.  The machine points
    this at a silent re-decode of its segment image
    ({!Isa.Machine.disassemble_at}); events whose address no longer
    decodes (or with no resolver installed) export as ["?"].  Because
    resolution happens at export, the text reflects memory as of
    export time — the recorded address is authoritative, the text is a
    rendering convenience. *)

val set_stats : log -> Counters.t -> unit
(** Mirror this log's discard statistics (drops, sampled-out events)
    into a {!Counters.t} — the machine points this at its own
    counters, so trace-pipeline losses ride the ordinary counter
    surface into deltas, fleet aggregation and every exporter. *)

val set_capacity : log -> int -> unit
(** Resize the ring buffer.  Clears the log.  Raises
    [Invalid_argument] if [capacity < 1]. *)

val capacity : log -> int

(** {1 Sampling} *)

val set_sampling : log -> interval:int -> seed:int -> unit
(** Keep (statistically) 1 in [interval] events, selected
    deterministically: whether a candidate is kept is a pure hash of
    its sequence number and [seed], so the same seeded workload keeps
    the same events on every run and every shard.  [interval = 1]
    (the default) keeps everything.  Raises [Invalid_argument] if
    [interval < 1]. *)

val sample_hit : interval:int -> seed:int -> int -> bool
(** [sample_hit ~interval ~seed seq] is the selection predicate
    itself, exposed so span sampling ({!Span.set_sampling}) and tests
    share the exact function. *)

val set_instr_sampling : log -> interval:int -> unit
(** Sample the {e instruction} stream at its own 1-in-[interval] rate,
    independent of the control-flow events: [record_instruction]
    candidates go through this interval while calls, returns, traps,
    gatekeeper actions, descriptor switches and notes keep following
    {!set_sampling}'s.  The selection predicate and seed are shared
    ({!sample_hit} over the one monotonic sequence), so the split
    changes which candidates are kept, never how they are chosen.
    [interval = 0] (the default) means "follow the control-flow
    interval" — the pre-split behaviour.  Raises [Invalid_argument] if
    [interval < 0]. *)

val sample_interval : log -> int

val sample_seed : log -> int

val instr_interval : log -> int
(** The instruction-stream interval as set ([0] = following
    {!sample_interval}). *)

(** {1 Recording}

    Each [record_*] is a no-op unless the log is enabled, and costs
    only integer stores when it is — callers on the hot path should
    still guard any argument computation behind {!enabled}. *)

val record_instruction : log -> ring:int -> segno:int -> wordno:int -> unit
(** The per-retired-instruction hot path: allocation-free; the
    disassembly text is resolved lazily at export. *)

val record_call :
  log ->
  crossing:crossing ->
  from_ring:int ->
  to_ring:int ->
  segno:int ->
  wordno:int ->
  unit

val record_return :
  log ->
  crossing:crossing ->
  from_ring:int ->
  to_ring:int ->
  segno:int ->
  wordno:int ->
  unit

val record_trap : log -> ring:int -> cause:string -> unit
val record_gatekeeper : log -> action:string -> unit
val record_descriptor_switch : log -> from_ring:int -> to_ring:int -> unit
val record_note : log -> string -> unit

val record : log -> t -> unit
(** Compatibility entry point over the variant view (tests, restore).
    An [Instruction] arriving with pre-formatted text keeps it. *)

(** {1 Reading} *)

val events : log -> t list
(** Retained events in the order they were recorded (oldest first; up
    to [capacity], earlier ones having been dropped), decoded from the
    arena — instruction text resolved through the resolver. *)

val stamped_events : log -> stamped list
(** Like {!events} but with stamps. *)

val fold_stamped : log -> init:'a -> f:('a -> stamped -> 'a) -> 'a
(** Fold over retained events oldest-first without building a list. *)

val dropped : log -> int
(** Events overwritten because the buffer was full. *)

val sampled_out : log -> int
(** Events deselected by the sampler (never entered the buffer). *)

val high_water : log -> int
(** Maximum retained count since the last {!clear} — how close the
    buffer came to wrapping. *)

val seen : log -> int
(** Total candidate events offered while enabled (recorded, dropped
    or sampled out).  Also the next sequence number. *)

val recorded : log -> int
(** Events accepted by the sampler ([seen - sampled_out]); of these,
    [dropped] were later overwritten. *)

val clear : log -> unit
(** Drop all events and reset the sequence and discard counters
    (sampling configuration and interned strings persist). *)

(** {1 Checkpoint support} *)

type dump = {
  d_entries : stamped list;
      (** Retained entries, instruction text resolved at dump time. *)
  d_next_seq : int;
  d_dropped : int;
  d_sampled_out : int;
  d_high_water : int;
  d_sample_interval : int;
  d_sample_seed : int;
  d_instr_interval : int;
}

val dump : log -> dump

val restore : log -> dump -> unit
(** Inverse of {!dump}: re-encode the entries into the arena without
    re-stamping or re-sampling, so sequence numbers, cycle stamps,
    sampler configuration and discard counters round-trip exactly.
    Restored instruction text is pinned (interned) rather than
    re-resolved.  Raises [Invalid_argument] if there are more entries
    than the log's capacity or the dumped interval is invalid. *)

val crossing_to_string : crossing -> string

val pp : Format.formatter -> t -> unit

val pp_log : Format.formatter -> log -> unit
