(* Power-of-two-bucketed histogram.  Bucket 0 holds values <= 0;
   bucket i >= 1 holds values in [2^(i-1), 2^i - 1] — i.e. values with
   exactly i significant bits.  Percentiles are computed from the
   bucket counts alone, so they are deterministic functions of the
   observed multiset and independent of observation order. *)

let max_buckets = 63

type t = {
  buckets : int array;
  mutable count : int;
  mutable sum : int;
  mutable vmin : int;
  mutable vmax : int;
}

let create () =
  {
    buckets = Array.make max_buckets 0;
    count = 0;
    sum = 0;
    vmin = max_int;
    vmax = min_int;
  }

let clear t =
  Array.fill t.buckets 0 max_buckets 0;
  t.count <- 0;
  t.sum <- 0;
  t.vmin <- max_int;
  t.vmax <- min_int

let bucket_of v =
  if v <= 0 then 0
  else begin
    let b = ref 0 and v = ref v in
    while !v > 0 do
      incr b;
      v := !v lsr 1
    done;
    !b
  end

let bucket_upper i = if i = 0 then 0 else (1 lsl i) - 1
let bucket_lower i = if i <= 0 then min_int else 1 lsl (i - 1)

let observe t v =
  t.buckets.(bucket_of v) <- t.buckets.(bucket_of v) + 1;
  t.count <- t.count + 1;
  t.sum <- t.sum + v;
  if v < t.vmin then t.vmin <- v;
  if v > t.vmax then t.vmax <- v

let count t = t.count
let sum t = t.sum
let min_value t = if t.count = 0 then 0 else t.vmin
let max_value t = if t.count = 0 then 0 else t.vmax

let mean t = if t.count = 0 then 0.0 else float_of_int t.sum /. float_of_int t.count

(* The value reported for percentile [p] is the upper bound of the
   bucket holding the rank-⌈p/100·count⌉ observation, clamped to the
   observed maximum — an overestimate by at most 2x, and exactly the
   reference percentile whenever that bucket is the last occupied
   one. *)
let percentile t p =
  if t.count = 0 then 0
  else begin
    let p = if p < 0.0 then 0.0 else if p > 100.0 then 100.0 else p in
    let rank =
      let r = int_of_float (ceil (p /. 100.0 *. float_of_int t.count)) in
      if r < 1 then 1 else if r > t.count then t.count else r
    in
    let i = ref 0 and cum = ref 0 in
    while !cum < rank && !i < max_buckets do
      cum := !cum + t.buckets.(!i);
      if !cum < rank then incr i
    done;
    let upper = bucket_upper !i in
    if upper > t.vmax then t.vmax else upper
  end

let merge_into ~dst src =
  if src.count > 0 then begin
    for i = 0 to max_buckets - 1 do
      dst.buckets.(i) <- dst.buckets.(i) + src.buckets.(i)
    done;
    dst.count <- dst.count + src.count;
    dst.sum <- dst.sum + src.sum;
    if src.vmin < dst.vmin then dst.vmin <- src.vmin;
    if src.vmax > dst.vmax then dst.vmax <- src.vmax
  end

let merge a b =
  let t = create () in
  merge_into ~dst:t a;
  merge_into ~dst:t b;
  t

(* Raw state, for the checkpoint codec: every bucket count followed by
   the scalar accumulators.  [restore] is the exact inverse, so a
   dump/restore round-trip reproduces percentiles bit-for-bit. *)
let dump t =
  (Array.copy t.buckets, t.count, t.sum, t.vmin, t.vmax)

let restore t (buckets, count, sum, vmin, vmax) =
  if Array.length buckets <> max_buckets then
    invalid_arg "Histogram.restore: wrong bucket count";
  Array.blit buckets 0 t.buckets 0 max_buckets;
  t.count <- count;
  t.sum <- sum;
  t.vmin <- vmin;
  t.vmax <- vmax

let nonempty_buckets t =
  let acc = ref [] in
  for i = max_buckets - 1 downto 0 do
    if t.buckets.(i) > 0 then
      acc := (bucket_lower i, bucket_upper i, t.buckets.(i)) :: !acc
  done;
  !acc
