(** Log2-bucketed histograms of non-negative integer samples (modeled
    cycle latencies).

    Bucket 0 holds values [<= 0]; bucket [i >= 1] holds values with
    exactly [i] significant bits, i.e. the range [2^(i-1) .. 2^i - 1].
    Percentiles are computed from the bucket counts, so they are
    deterministic: the same multiset of observations yields the same
    p50/p90/p99 regardless of order, host, or timing. *)

type t

val create : unit -> t

val clear : t -> unit

val observe : t -> int -> unit

val count : t -> int

val sum : t -> int

val min_value : t -> int
(** 0 when empty. *)

val max_value : t -> int
(** 0 when empty. *)

val mean : t -> float
(** 0.0 when empty. *)

val percentile : t -> float -> int
(** [percentile t p] for [p] in [0..100]: the upper bound of the
    bucket containing the rank-⌈p/100·count⌉ observation, clamped to
    the observed maximum.  Deterministic; overestimates the exact
    order statistic by less than 2x.  0 when empty. *)

val bucket_of : int -> int
(** The bucket index a value falls in. *)

val bucket_upper : int -> int
(** Inclusive upper bound of bucket [i]. *)

val bucket_lower : int -> int
(** Inclusive lower bound of bucket [i] ([min_int] for bucket 0). *)

val merge_into : dst:t -> t -> unit
(** [merge_into ~dst src] adds every observation recorded in [src]
    into [dst] (bucket-wise): aggregating per-campaign histograms into
    one fleet-wide distribution.  [src] is unchanged. *)

val merge : t -> t -> t
(** [merge a b] is a fresh histogram holding both inputs' observations
    (pointwise bucket sum); [a] and [b] are unchanged.  Commutative
    and associative, so a fleet-wide fold over per-shard histograms
    yields the same distribution whatever the shard order. *)

val nonempty_buckets : t -> (int * int * int) list
(** [(lower, upper, count)] for each occupied bucket, ascending. *)

val dump : t -> int array * int * int * int * int
(** Raw state [(buckets, count, sum, vmin, vmax)] for the checkpoint
    codec; [buckets] is a copy of all 63 counts. *)

val restore : t -> int array * int * int * int * int -> unit
(** Inverse of {!dump}: overwrite the histogram with dumped state.
    Raises [Invalid_argument] if the bucket array is the wrong size. *)
