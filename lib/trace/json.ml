(* A minimal JSON reader — just enough to validate and inspect what
   the exporters emit (and what the trace-smoke target checks),
   without an external dependency.  Parses the full JSON grammar;
   numbers become floats, \u escapes decode to UTF-8. *)

type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | Array of t list
  | Object of (string * t) list

exception Fail of string

type state = { s : string; mutable pos : int }

let error st msg = raise (Fail (Printf.sprintf "at %d: %s" st.pos msg))

let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | Some c' -> error st (Printf.sprintf "expected %c, found %c" c c')
  | None -> error st (Printf.sprintf "expected %c, found end of input" c)

let literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length (st.s) && String.sub st.s st.pos n = word
  then begin
    st.pos <- st.pos + n;
    value
  end
  else error st (Printf.sprintf "expected %s" word)

let utf8_of_code buf c =
  (* Encode a Unicode scalar value as UTF-8. *)
  if c < 0x80 then Buffer.add_char buf (Char.chr c)
  else if c < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (c lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (c land 0x3F)))
  end
  else if c < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (c lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((c lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (c land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (c lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((c lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((c lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (c land 0x3F)))
  end

let hex4 st =
  let v = ref 0 in
  for _ = 1 to 4 do
    (match peek st with
    | Some c when c >= '0' && c <= '9' ->
        v := (!v * 16) + Char.code c - Char.code '0'
    | Some c when c >= 'a' && c <= 'f' ->
        v := (!v * 16) + Char.code c - Char.code 'a' + 10
    | Some c when c >= 'A' && c <= 'F' ->
        v := (!v * 16) + Char.code c - Char.code 'A' + 10
    | _ -> error st "bad \\u escape");
    advance st
  done;
  !v

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> error st "unterminated string"
    | Some '"' ->
        advance st;
        Buffer.contents buf
    | Some '\\' -> (
        advance st;
        match peek st with
        | Some '"' -> advance st; Buffer.add_char buf '"'; go ()
        | Some '\\' -> advance st; Buffer.add_char buf '\\'; go ()
        | Some '/' -> advance st; Buffer.add_char buf '/'; go ()
        | Some 'b' -> advance st; Buffer.add_char buf '\b'; go ()
        | Some 'f' -> advance st; Buffer.add_char buf '\012'; go ()
        | Some 'n' -> advance st; Buffer.add_char buf '\n'; go ()
        | Some 'r' -> advance st; Buffer.add_char buf '\r'; go ()
        | Some 't' -> advance st; Buffer.add_char buf '\t'; go ()
        | Some 'u' ->
            advance st;
            utf8_of_code buf (hex4 st);
            go ()
        | _ -> error st "bad escape")
    | Some c when Char.code c < 0x20 -> error st "control character in string"
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        go ()
  in
  go ()

let parse_number st =
  let start = st.pos in
  let consume_while pred =
    let rec go () =
      match peek st with
      | Some c when pred c ->
          advance st;
          go ()
      | _ -> ()
    in
    go ()
  in
  (match peek st with Some '-' -> advance st | _ -> ());
  let digits0 = st.pos in
  consume_while (fun c -> c >= '0' && c <= '9');
  if st.pos = digits0 then error st "expected digit";
  (match peek st with
  | Some '.' ->
      advance st;
      let d = st.pos in
      consume_while (fun c -> c >= '0' && c <= '9');
      if st.pos = d then error st "expected fraction digit"
  | _ -> ());
  (match peek st with
  | Some ('e' | 'E') ->
      advance st;
      (match peek st with Some ('+' | '-') -> advance st | _ -> ());
      let d = st.pos in
      consume_while (fun c -> c >= '0' && c <= '9');
      if st.pos = d then error st "expected exponent digit"
  | _ -> ());
  match float_of_string_opt (String.sub st.s start (st.pos - start)) with
  | Some f -> f
  | None -> error st "bad number"

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> error st "expected value, found end of input"
  | Some '{' -> parse_object st
  | Some '[' -> parse_array st
  | Some '"' -> String (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some ('-' | '0' .. '9') -> Number (parse_number st)
  | Some c -> error st (Printf.sprintf "unexpected %c" c)

and parse_object st =
  expect st '{';
  skip_ws st;
  match peek st with
  | Some '}' ->
      advance st;
      Object []
  | _ ->
      let rec members acc =
        skip_ws st;
        let key = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
            advance st;
            members ((key, v) :: acc)
        | Some '}' ->
            advance st;
            Object (List.rev ((key, v) :: acc))
        | _ -> error st "expected , or } in object"
      in
      members []

and parse_array st =
  expect st '[';
  skip_ws st;
  match peek st with
  | Some ']' ->
      advance st;
      Array []
  | _ ->
      let rec elements acc =
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
            advance st;
            elements (v :: acc)
        | Some ']' ->
            advance st;
            Array (List.rev (v :: acc))
        | _ -> error st "expected , or ] in array"
      in
      elements []

let parse s =
  let st = { s; pos = 0 } in
  match parse_value st with
  | v ->
      skip_ws st;
      if st.pos <> String.length s then
        Error (Printf.sprintf "at %d: trailing garbage" st.pos)
      else Ok v
  | exception Fail msg -> Error msg

let member key = function
  | Object kvs -> List.assoc_opt key kvs
  | _ -> None

let rec pp ppf = function
  | Null -> Format.fprintf ppf "null"
  | Bool b -> Format.fprintf ppf "%b" b
  | Number f -> Format.fprintf ppf "%g" f
  | String s -> Format.fprintf ppf "%S" s
  | Array vs ->
      Format.fprintf ppf "[@[%a@]]"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ") pp)
        vs
  | Object kvs ->
      Format.fprintf ppf "{@[%a@]}"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
           (fun ppf (k, v) -> Format.fprintf ppf "%S: %a" k pp v))
        kvs
