(* Exporters for the tracing subsystem.  All output is built from
   modeled state only (cycles, counters, spans) — no wall-clock, no
   host data — so every exporter is byte-deterministic for a given
   run, which is what `make trace-smoke` checks.

   Three formats:
   - Chrome trace-event JSON ("ph":"X" complete events), loadable in
     Perfetto / chrome://tracing.  One "thread" per ring; 1 µs of
     trace time = 1 modeled cycle.
   - JSONL: one raw stamped event per line.
   - Metrics: a Prometheus-style text page and a JSON snapshot, each
     covering every Counters field, the per-ring/per-segment profile
     and the span-latency histograms. *)

let add_escaped buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let add_str buf s =
  Buffer.add_char buf '"';
  add_escaped buf s;
  Buffer.add_char buf '"'

(* Crossing kinds as stable identifiers (metrics label values and
   Chrome categories). *)
let kind_id = function
  | Event.Same_ring -> "same_ring"
  | Event.Downward -> "downward"
  | Event.Upward -> "upward"
  | Event.Recovery -> "recovery"

(* The gatekeeper/supervisor "thread" in the Chrome trace: not a ring
   of the modeled processor, so give it a tid clear of ring numbers. *)
let kernel_tid = 99

(* {1 Chrome trace} *)

let span_event ?backend buf ~pid (s : Span.completed) =
  (* The backend label rides in args so merged multi-backend traces
     stay distinguishable; omitted (not defaulted) when the caller
     has no label, keeping single-backend documents byte-stable. *)
  let backend_arg =
    match backend with
    | None -> ""
    | Some b -> Printf.sprintf "\"backend\":\"%s\"," b
  in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"name\":\"%s call r%d->r%d seg %d\",\"cat\":\"%s\",\"ph\":\"X\",\
        \"pid\":%d,\"tid\":%d,\"ts\":%d,\"dur\":%d,\"args\":{%s\"from_ring\":%d,\
        \"to_ring\":%d,\"segno\":%d,\"wordno\":%d,\"depth\":%d,\"seq\":%d,\
        \"forced\":%b}}"
       (kind_id s.Span.kind) s.Span.from_ring s.Span.to_ring s.Span.segno
       (kind_id s.Span.kind) pid s.Span.to_ring s.Span.start_cycles
       (s.Span.end_cycles - s.Span.start_cycles)
       backend_arg s.Span.from_ring s.Span.to_ring s.Span.segno s.Span.wordno
       s.Span.depth s.Span.seq s.Span.forced)

let instant_event buf ~pid ~tid ~cycles ~seq ~name ~cat =
  Buffer.add_string buf
    (Printf.sprintf "{\"name\":");
  add_str buf name;
  Buffer.add_string buf
    (Printf.sprintf
       ",\"cat\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"pid\":%d,\"tid\":%d,\
        \"ts\":%d,\"args\":{\"seq\":%d}}"
       cat pid tid cycles seq)

let stamped_event buf ~pid (s : Event.stamped) =
  let cycles = s.Event.cycles and seq = s.Event.seq in
  match s.Event.event with
  | Event.Instruction { ring; segno; wordno; text } ->
      instant_event buf ~pid ~tid:ring ~cycles ~seq ~cat:"instruction"
        ~name:(Printf.sprintf "%d|%06o %s" segno wordno text)
  | Event.Call { crossing; from_ring; to_ring; segno; wordno } ->
      instant_event buf ~pid ~tid:to_ring ~cycles ~seq ~cat:"call"
        ~name:
          (Printf.sprintf "CALL %s r%d->r%d %d|%06o"
             (Event.crossing_to_string crossing)
             from_ring to_ring segno wordno)
  | Event.Return { crossing; from_ring; to_ring; segno; wordno } ->
      instant_event buf ~pid ~tid:to_ring ~cycles ~seq ~cat:"return"
        ~name:
          (Printf.sprintf "RETURN %s r%d->r%d %d|%06o"
             (Event.crossing_to_string crossing)
             from_ring to_ring segno wordno)
  | Event.Trap { ring; cause } ->
      instant_event buf ~pid ~tid:ring ~cycles ~seq ~cat:"trap"
        ~name:(Printf.sprintf "TRAP %s" cause)
  | Event.Gatekeeper { action } ->
      instant_event buf ~pid ~tid:kernel_tid ~cycles ~seq ~cat:"gatekeeper"
        ~name:action
  | Event.Descriptor_switch { from_ring; to_ring } ->
      instant_event buf ~pid ~tid:to_ring ~cycles ~seq ~cat:"descriptor_switch"
        ~name:(Printf.sprintf "DBR switch r%d->r%d" from_ring to_ring)
  | Event.Note s ->
      instant_event buf ~pid ~tid:kernel_tid ~cycles ~seq ~cat:"note" ~name:s

module Int_set = Set.Make (Int)

(* One Chrome "process": its name metadata, per-ring thread names, then
   spans and events.  [chrome_trace] emits a single process with pid 0;
   the fleet exporter emits one process per request. *)
let add_process ?backend buf ~sep ~pid ~pname ~events ~spans =
  (* Name the per-ring "threads" so Perfetto's track labels read as
     rings, not tids. *)
  let tids =
    let of_event (s : Event.stamped) =
      match s.Event.event with
      | Event.Instruction { ring; _ } | Event.Trap { ring; _ } -> ring
      | Event.Call { to_ring; _ }
      | Event.Return { to_ring; _ }
      | Event.Descriptor_switch { to_ring; _ } ->
          to_ring
      | Event.Gatekeeper _ | Event.Note _ -> kernel_tid
    in
    Int_set.empty
    |> fun init ->
    List.fold_left (fun acc s -> Int_set.add (of_event s) acc) init events
    |> fun init ->
    List.fold_left
      (fun acc (s : Span.completed) -> Int_set.add s.Span.to_ring acc)
      init spans
  in
  sep ();
  Buffer.add_string buf
    (Printf.sprintf
       "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"args\":{\"name\":"
       pid);
  add_str buf pname;
  Buffer.add_string buf "}}";
  Int_set.iter
    (fun tid ->
      sep ();
      let name =
        if tid = kernel_tid then "gatekeeper" else Printf.sprintf "ring %d" tid
      in
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\
            \"args\":{\"name\":\"%s\"}}"
           pid tid name))
    tids;
  List.iter
    (fun s ->
      sep ();
      span_event ?backend buf ~pid s)
    spans;
  List.iter
    (fun e ->
      sep ();
      stamped_event buf ~pid e)
    events

let chrome_trace ?backend ?(events = []) ?(spans = []) () =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ns\",\n\"traceEvents\":[\n";
  let first = ref true in
  let sep () =
    if !first then first := false else Buffer.add_string buf ",\n"
  in
  add_process ?backend buf ~sep ~pid:0
    ~pname:"ringsim (1us = 1 modeled cycle)" ~events ~spans;
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

(* The fleet view: every request of a traced serving campaign as its
   own Chrome process (pid = request id), rings as threads inside it.
   Callers pass requests in id order, so the document is deterministic
   whenever the per-request traces are. *)
let chrome_trace_fleet groups =
  let buf = Buffer.create 65536 in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ns\",\n\"traceEvents\":[\n";
  let first = ref true in
  let sep () =
    if !first then first := false else Buffer.add_string buf ",\n"
  in
  List.iter
    (fun (pid, pname, events, spans) ->
      add_process buf ~sep ~pid ~pname ~events ~spans)
    groups;
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

(* {1 JSONL raw events} *)

let jsonl_line buf (s : Event.stamped) =
  let common kind =
    Buffer.add_string buf
      (Printf.sprintf "{\"seq\":%d,\"cycles\":%d,\"type\":\"%s\"" s.Event.seq
         s.Event.cycles kind)
  in
  (match s.Event.event with
  | Event.Instruction { ring; segno; wordno; text } ->
      common "instruction";
      Buffer.add_string buf
        (Printf.sprintf ",\"ring\":%d,\"segno\":%d,\"wordno\":%d,\"text\":"
           ring segno wordno);
      add_str buf text
  | Event.Call { crossing; from_ring; to_ring; segno; wordno } ->
      common "call";
      Buffer.add_string buf
        (Printf.sprintf
           ",\"crossing\":\"%s\",\"from_ring\":%d,\"to_ring\":%d,\
            \"segno\":%d,\"wordno\":%d"
           (kind_id crossing) from_ring to_ring segno wordno)
  | Event.Return { crossing; from_ring; to_ring; segno; wordno } ->
      common "return";
      Buffer.add_string buf
        (Printf.sprintf
           ",\"crossing\":\"%s\",\"from_ring\":%d,\"to_ring\":%d,\
            \"segno\":%d,\"wordno\":%d"
           (kind_id crossing) from_ring to_ring segno wordno)
  | Event.Trap { ring; cause } ->
      common "trap";
      Buffer.add_string buf (Printf.sprintf ",\"ring\":%d,\"cause\":" ring);
      add_str buf cause
  | Event.Gatekeeper { action } ->
      common "gatekeeper";
      Buffer.add_string buf ",\"action\":";
      add_str buf action
  | Event.Descriptor_switch { from_ring; to_ring } ->
      common "descriptor_switch";
      Buffer.add_string buf
        (Printf.sprintf ",\"from_ring\":%d,\"to_ring\":%d" from_ring to_ring)
  | Event.Note text ->
      common "note";
      Buffer.add_string buf ",\"text\":";
      add_str buf text);
  Buffer.add_string buf "}\n"

let events_jsonl events =
  let buf = Buffer.create 4096 in
  List.iter (jsonl_line buf) events;
  Buffer.contents buf

(* {1 Metrics} *)

let all_kinds =
  [ Event.Same_ring; Event.Downward; Event.Upward; Event.Recovery ]

let histogram_json buf h =
  Buffer.add_string buf
    (Printf.sprintf
       "{\"count\":%d,\"sum\":%d,\"min\":%d,\"max\":%d,\"p50\":%d,\
        \"p90\":%d,\"p99\":%d,\"buckets\":["
       (Histogram.count h) (Histogram.sum h) (Histogram.min_value h)
       (Histogram.max_value h)
       (Histogram.percentile h 50.0)
       (Histogram.percentile h 90.0)
       (Histogram.percentile h 99.0));
  List.iteri
    (fun i (lower, upper, count) ->
      if i > 0 then Buffer.add_char buf ',';
      let lower = if lower = min_int then 0 else lower in
      Buffer.add_string buf
        (Printf.sprintf "{\"lower\":%d,\"upper\":%d,\"count\":%d}" lower upper
           count))
    (Histogram.nonempty_buckets h);
  Buffer.add_string buf "]}"

let metrics_json ~counters ?events ?spans ?profile ?(segment_names = []) () =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n  \"counters\": {";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf (Printf.sprintf "\n    \"%s\": %d" name v))
    (Counters.fields counters);
  Buffer.add_string buf "\n  }";
  (match events with
  | None -> ()
  | Some log ->
      Buffer.add_string buf
        (Printf.sprintf
           ",\n  \"events\": {\"seen\": %d, \"recorded\": %d, \"dropped\": \
            %d, \"sampled_out\": %d,\n    \"capacity\": %d, \"high_water\": \
            %d, \"sample_interval\": %d, \"sample_seed\": %d, \
            \"instr_interval\": %d}"
           (Event.seen log) (Event.recorded log) (Event.dropped log)
           (Event.sampled_out log) (Event.capacity log) (Event.high_water log)
           (Event.sample_interval log) (Event.sample_seed log)
           (Event.instr_interval log)));
  (match spans with
  | None -> ()
  | Some tr ->
      Buffer.add_string buf
        (Printf.sprintf
           ",\n  \"spans\": {\n    \"backend\": \"%s\", \"dropped\": %d, \
            \"unmatched_returns\": %d, \"open\": %d, \"sampled_out\": %d, \
            \"sample_interval\": %d,\n    \"latency_cycles\": {"
           (Span.backend tr) (Span.dropped tr)
           (Span.unmatched_returns tr)
           (Span.open_depth tr) (Span.sampled_out tr) (Span.sample_interval tr));
      List.iteri
        (fun i kind ->
          if i > 0 then Buffer.add_string buf ", ";
          Buffer.add_string buf (Printf.sprintf "\n      \"%s\": " (kind_id kind));
          histogram_json buf (Span.histogram tr kind))
        all_kinds;
      Buffer.add_string buf "\n    }\n  }");
  (match profile with
  | None -> ()
  | Some p ->
      Buffer.add_string buf
        (Printf.sprintf
           ",\n  \"profile\": {\n    \"kernel_cycles\": %d,\n    \"per_ring\": ["
           (Profile.kernel_cycles p));
      List.iteri
        (fun i (ring, cycles, instructions) ->
          if i > 0 then Buffer.add_string buf ", ";
          Buffer.add_string buf
            (Printf.sprintf
               "\n      {\"ring\": %d, \"cycles\": %d, \"instructions\": %d}"
               ring cycles instructions))
        (Profile.per_ring p);
      Buffer.add_string buf "\n    ],\n    \"per_segment\": [";
      List.iteri
        (fun i (segno, cycles, instructions) ->
          if i > 0 then Buffer.add_string buf ", ";
          Buffer.add_string buf
            (Printf.sprintf "\n      {\"segno\": %d, \"name\": " segno);
          (match List.assoc_opt segno segment_names with
          | Some name -> add_str buf name
          | None -> Buffer.add_string buf "null");
          Buffer.add_string buf
            (Printf.sprintf ", \"cycles\": %d, \"instructions\": %d}" cycles
               instructions))
        (Profile.per_segment p);
      Buffer.add_string buf "\n    ]\n  }");
  Buffer.add_string buf "\n}\n";
  Buffer.contents buf

let prom_label_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let metrics_prometheus ~counters ?events ?spans ?profile ?(segment_names = [])
    () =
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  List.iter
    (fun (name, v) ->
      line "# TYPE rings_%s counter" name;
      line "rings_%s %d" name v)
    (Counters.fields counters);
  (match events with
  | None -> ()
  | Some log ->
      line "# TYPE rings_events_seen counter";
      line "rings_events_seen %d" (Event.seen log);
      line "# TYPE rings_events_recorded counter";
      line "rings_events_recorded %d" (Event.recorded log);
      line "# TYPE rings_events_dropped counter";
      line "rings_events_dropped %d" (Event.dropped log);
      line "# TYPE rings_events_sampled_out counter";
      line "rings_events_sampled_out %d" (Event.sampled_out log);
      line "# TYPE rings_events_capacity gauge";
      line "rings_events_capacity %d" (Event.capacity log);
      line "# TYPE rings_events_high_water gauge";
      line "rings_events_high_water %d" (Event.high_water log);
      line "# TYPE rings_events_sample_interval gauge";
      line "rings_events_sample_interval %d" (Event.sample_interval log);
      line "# TYPE rings_events_instr_interval gauge";
      line "rings_events_instr_interval %d" (Event.instr_interval log));
  (match profile with
  | None -> ()
  | Some p ->
      line "# TYPE rings_profile_kernel_cycles counter";
      line "rings_profile_kernel_cycles %d" (Profile.kernel_cycles p);
      line "# TYPE rings_profile_ring_cycles counter";
      List.iter
        (fun (ring, cycles, _) ->
          line "rings_profile_ring_cycles{ring=\"%d\"} %d" ring cycles)
        (Profile.per_ring p);
      line "# TYPE rings_profile_ring_instructions counter";
      List.iter
        (fun (ring, _, instructions) ->
          line "rings_profile_ring_instructions{ring=\"%d\"} %d" ring
            instructions)
        (Profile.per_ring p);
      let seg_label segno =
        match List.assoc_opt segno segment_names with
        | Some name ->
            Printf.sprintf "segno=\"%d\",name=\"%s\"" segno
              (prom_label_escape name)
        | None -> Printf.sprintf "segno=\"%d\"" segno
      in
      line "# TYPE rings_profile_segment_cycles counter";
      List.iter
        (fun (segno, cycles, _) ->
          line "rings_profile_segment_cycles{%s} %d" (seg_label segno) cycles)
        (Profile.per_segment p);
      line "# TYPE rings_profile_segment_instructions counter";
      List.iter
        (fun (segno, _, instructions) ->
          line "rings_profile_segment_instructions{%s} %d" (seg_label segno)
            instructions)
        (Profile.per_segment p));
  (match spans with
  | None -> ()
  | Some tr ->
      line "# TYPE rings_span_dropped counter";
      line "rings_span_dropped %d" (Span.dropped tr);
      line "# TYPE rings_span_unmatched_returns counter";
      line "rings_span_unmatched_returns %d" (Span.unmatched_returns tr);
      line "# TYPE rings_span_sampled_out counter";
      line "rings_span_sampled_out %d" (Span.sampled_out tr);
      line "# TYPE rings_span_sample_interval gauge";
      line "rings_span_sample_interval %d" (Span.sample_interval tr);
      line "# TYPE rings_span_latency_cycles histogram";
      List.iter
        (fun kind ->
          let h = Span.histogram tr kind in
          let id = kind_id kind in
          let cum = ref 0 in
          List.iter
            (fun (_, upper, count) ->
              cum := !cum + count;
              line "rings_span_latency_cycles_bucket{kind=\"%s\",le=\"%d\"} %d"
                id upper !cum)
            (Histogram.nonempty_buckets h);
          line "rings_span_latency_cycles_bucket{kind=\"%s\",le=\"+Inf\"} %d"
            id (Histogram.count h);
          line "rings_span_latency_cycles_sum{kind=\"%s\"} %d" id
            (Histogram.sum h);
          line "rings_span_latency_cycles_count{kind=\"%s\"} %d" id
            (Histogram.count h))
        all_kinds);
  Buffer.contents buf
