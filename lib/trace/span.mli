(** Modeled-cycle latency spans over the simulated call stack.

    Every CALL that actually transfers control opens a span; the
    RETURN (or outward-return gate) that undoes it closes the
    innermost open one — the ring calling conventions are strictly
    LIFO, so matching is a stack, nested exactly like the simulated
    call stack.  Span latency is [end_cycles - start_cycles] in
    modeled cycles: fully deterministic, independent of the host.

    A crossing that never returns (a fault terminates the process, or
    the run ends mid-call) is closed by {!drain} with [forced = true].

    Closed spans accumulate into one {!Histogram.t} per crossing kind,
    and into a bounded ring buffer of {!completed} records for the
    Chrome-trace exporter (oldest dropped first, counted). *)

type completed = {
  kind : Event.crossing;
  from_ring : int;
  to_ring : int;
  segno : int;  (** Call target segment. *)
  wordno : int;
  start_cycles : int;
  end_cycles : int;
  depth : int;  (** Open-span nesting depth when this span opened. *)
  seq : int;  (** Open order, monotonic. *)
  forced : bool;  (** Closed by {!drain}, not by a matching return. *)
}

type open_span = {
  o_kind : Event.crossing;
  o_from_ring : int;
  o_to_ring : int;
  o_segno : int;
  o_wordno : int;
  o_start : int;
  o_depth : int;
  o_seq : int;
}
(** A span opened but not yet closed — exposed for the checkpoint
    codec, which must carry the open-call stack across a restore. *)

type tracker

val default_capacity : int

val create : ?capacity:int -> unit -> tracker
(** Created disabled with an unallocated buffer; a tracker that never
    enables costs only the record. *)

val enabled : tracker -> bool

val set_enabled : tracker -> bool -> unit

val set_stats : tracker -> Counters.t -> unit
(** Mirror sampled-out span counts into a {!Counters.t} — the machine
    points this at its own counters. *)

val backend : tracker -> string
(** Protection-backend label for this tracker's spans — ["hw"] (the
    default), ["645"] or ["cap"].  A label only: the machine sets it
    at creation and the exporters surface it, so crossing spans from
    different backends are distinguishable in one merged trace. *)

val set_backend : tracker -> string -> unit

val set_sampling : tracker -> interval:int -> seed:int -> unit
(** Keep (statistically) 1 in [interval] completed spans, selected by
    {!Event.sample_hit} over the span's open-order sequence number —
    deterministic for a seeded workload.  The open-span stack is
    always fully maintained (matching needs every call); sampling
    applies at completion, before the histogram and the ring buffer,
    so sampled percentiles are computed over the selected subset.
    [interval = 1] (the default) keeps everything.  Raises
    [Invalid_argument] if [interval < 1]. *)

val sample_interval : tracker -> int

val sample_seed : tracker -> int

val open_span :
  tracker ->
  kind:Event.crossing ->
  from_ring:int ->
  to_ring:int ->
  segno:int ->
  wordno:int ->
  cycles:int ->
  unit

val close_span : ?kind:Event.crossing -> tracker -> cycles:int -> unit
(** Close the innermost open span.  With [kind], close only if the
    innermost span is of that kind — a mismatch is an intermediate
    transfer inside a larger supervised crossing (e.g. the hardware
    upward return into the outward-return trampoline) and leaves the
    span open.  A return with no span open (e.g. tracking was enabled
    mid-call-chain) bumps {!unmatched_returns} instead. *)

val drain : tracker -> cycles:int -> unit
(** Force-close every open span at [cycles] — call before exporting,
    and after a run that terminated on a fault. *)

val completed : tracker -> completed list
(** Retained completed spans, in completion order. *)

val histogram : tracker -> Event.crossing -> Histogram.t
(** Latency histogram of completed spans of one crossing kind. *)

val open_depth : tracker -> int

val dropped : tracker -> int
(** Completed spans overwritten because the buffer was full. *)

val sampled_out : tracker -> int
(** Completed spans deselected by the sampler (never observed by the
    histograms or retained). *)

val unmatched_returns : tracker -> int

val clear : tracker -> unit

(** {1 Checkpoint support} *)

type dump = {
  dump_stack : open_span list;  (** Innermost first. *)
  dump_next_seq : int;
  dump_completed : completed list;
  dump_dropped : int;
  dump_unmatched : int;
  dump_sampled_out : int;
  dump_sample_interval : int;
  dump_sample_seed : int;
  dump_hists : (int array * int * int * int * int) array;
      (** Latency histograms in kind order: same-ring, downward,
          upward, recovery. *)
}

val dump : tracker -> dump

val restore : tracker -> dump -> unit
(** Inverse of {!dump}; raises [Invalid_argument] on a shape
    mismatch (too many completed spans, wrong histogram count). *)
