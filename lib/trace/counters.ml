type t = {
  mutable cycles : int;
  mutable instructions : int;
  mutable memory_reads : int;
  mutable memory_writes : int;
  mutable sdw_fetches : int;
  mutable indirections : int;
  mutable traps : int;
  mutable calls_same_ring : int;
  mutable calls_downward : int;
  mutable calls_upward : int;
  mutable returns_same_ring : int;
  mutable returns_upward : int;
  mutable returns_downward : int;
  mutable gatekeeper_entries : int;
  mutable descriptor_switches : int;
  mutable access_violations : int;
  mutable ptw_fetches : int;
  mutable page_faults : int;
  mutable page_evictions : int;
  mutable channel_ops : int;
  (* Host-side associative-memory effectiveness.  These describe the
     simulator's caches, not the modeled hardware: they move freely
     without affecting the cycle accounting above. *)
  mutable sdw_cache_hits : int;
  mutable sdw_cache_misses : int;
  mutable sdw_cache_evictions : int;
  mutable ptw_tlb_hits : int;
  mutable ptw_tlb_misses : int;
  mutable ptw_tlb_evictions : int;
  mutable icache_hits : int;
  mutable icache_misses : int;
  mutable icache_evictions : int;
  (* Fault injection and recovery.  [injected] counts faults the
     injector delivered; the rest describe what the kernel did about
     them: transfers re-armed with backoff, faults scrubbed-and-
     resumed, processes killed over budget, and cache subsystems
     dropped to uncached operation on coherence damage. *)
  mutable injected : int;
  mutable retried : int;
  mutable recovered : int;
  mutable quarantined : int;
  mutable degraded : int;
  (* Checkpoint/restore and the dispatcher watchdog.  [restores] and
     [journal_replays_skipped] are session-local: they count work the
     resumed OS process did that the uninterrupted run never had to,
     so they legitimately differ between the two (everything else is
     checkpoint-deterministic). *)
  mutable snapshots_written : int;
  mutable restores : int;
  mutable restore_audit_rejections : int;
  mutable journal_replays_skipped : int;
  mutable watchdog_tripped : int;
  (* Trace-pipeline self-observation: events overwritten in a full
     ring buffer, and events/spans deselected by the deterministic
     1-in-N sampler.  These move only when tracing is enabled, so an
     untraced run's counter surface is unchanged. *)
  mutable events_dropped : int;
  mutable events_sampled_out : int;
  mutable spans_sampled_out : int;
}

let create () =
  {
    cycles = 0;
    instructions = 0;
    memory_reads = 0;
    memory_writes = 0;
    sdw_fetches = 0;
    indirections = 0;
    traps = 0;
    calls_same_ring = 0;
    calls_downward = 0;
    calls_upward = 0;
    returns_same_ring = 0;
    returns_upward = 0;
    returns_downward = 0;
    gatekeeper_entries = 0;
    descriptor_switches = 0;
    access_violations = 0;
    ptw_fetches = 0;
    page_faults = 0;
    page_evictions = 0;
    channel_ops = 0;
    sdw_cache_hits = 0;
    sdw_cache_misses = 0;
    sdw_cache_evictions = 0;
    ptw_tlb_hits = 0;
    ptw_tlb_misses = 0;
    ptw_tlb_evictions = 0;
    icache_hits = 0;
    icache_misses = 0;
    icache_evictions = 0;
    injected = 0;
    retried = 0;
    recovered = 0;
    quarantined = 0;
    degraded = 0;
    snapshots_written = 0;
    restores = 0;
    restore_audit_rejections = 0;
    journal_replays_skipped = 0;
    watchdog_tripped = 0;
    events_dropped = 0;
    events_sampled_out = 0;
    spans_sampled_out = 0;
  }

let reset t =
  t.cycles <- 0;
  t.instructions <- 0;
  t.memory_reads <- 0;
  t.memory_writes <- 0;
  t.sdw_fetches <- 0;
  t.indirections <- 0;
  t.traps <- 0;
  t.calls_same_ring <- 0;
  t.calls_downward <- 0;
  t.calls_upward <- 0;
  t.returns_same_ring <- 0;
  t.returns_upward <- 0;
  t.returns_downward <- 0;
  t.gatekeeper_entries <- 0;
  t.descriptor_switches <- 0;
  t.access_violations <- 0;
  t.ptw_fetches <- 0;
  t.page_faults <- 0;
  t.page_evictions <- 0;
  t.channel_ops <- 0;
  t.sdw_cache_hits <- 0;
  t.sdw_cache_misses <- 0;
  t.sdw_cache_evictions <- 0;
  t.ptw_tlb_hits <- 0;
  t.ptw_tlb_misses <- 0;
  t.ptw_tlb_evictions <- 0;
  t.icache_hits <- 0;
  t.icache_misses <- 0;
  t.icache_evictions <- 0;
  t.injected <- 0;
  t.retried <- 0;
  t.recovered <- 0;
  t.quarantined <- 0;
  t.degraded <- 0;
  t.snapshots_written <- 0;
  t.restores <- 0;
  t.restore_audit_rejections <- 0;
  t.journal_replays_skipped <- 0;
  t.watchdog_tripped <- 0;
  t.events_dropped <- 0;
  t.events_sampled_out <- 0;
  t.spans_sampled_out <- 0

let charge t n = t.cycles <- t.cycles + n
let cycles t = t.cycles
let bump_instructions t = t.instructions <- t.instructions + 1
let instructions t = t.instructions
let bump_memory_reads t = t.memory_reads <- t.memory_reads + 1
let memory_reads t = t.memory_reads
let bump_memory_writes t = t.memory_writes <- t.memory_writes + 1
let memory_writes t = t.memory_writes
let bump_sdw_fetches t = t.sdw_fetches <- t.sdw_fetches + 1
let sdw_fetches t = t.sdw_fetches
let bump_indirections t = t.indirections <- t.indirections + 1
let indirections t = t.indirections
let bump_traps t = t.traps <- t.traps + 1
let traps t = t.traps
let bump_calls_same_ring t = t.calls_same_ring <- t.calls_same_ring + 1
let calls_same_ring t = t.calls_same_ring
let bump_calls_downward t = t.calls_downward <- t.calls_downward + 1
let calls_downward t = t.calls_downward
let bump_calls_upward t = t.calls_upward <- t.calls_upward + 1
let calls_upward t = t.calls_upward
let bump_returns_same_ring t = t.returns_same_ring <- t.returns_same_ring + 1
let returns_same_ring t = t.returns_same_ring
let bump_returns_upward t = t.returns_upward <- t.returns_upward + 1
let returns_upward t = t.returns_upward
let bump_returns_downward t = t.returns_downward <- t.returns_downward + 1
let returns_downward t = t.returns_downward

let bump_gatekeeper_entries t =
  t.gatekeeper_entries <- t.gatekeeper_entries + 1

let gatekeeper_entries t = t.gatekeeper_entries

let bump_descriptor_switches t =
  t.descriptor_switches <- t.descriptor_switches + 1

let descriptor_switches t = t.descriptor_switches

let bump_access_violations t =
  t.access_violations <- t.access_violations + 1

let access_violations t = t.access_violations
let bump_ptw_fetches t = t.ptw_fetches <- t.ptw_fetches + 1
let ptw_fetches t = t.ptw_fetches
let bump_page_faults t = t.page_faults <- t.page_faults + 1
let page_faults t = t.page_faults
let bump_page_evictions t = t.page_evictions <- t.page_evictions + 1
let page_evictions t = t.page_evictions
let bump_channel_ops t = t.channel_ops <- t.channel_ops + 1
let channel_ops t = t.channel_ops

let bump_sdw_cache_hits t = t.sdw_cache_hits <- t.sdw_cache_hits + 1
let sdw_cache_hits t = t.sdw_cache_hits
let bump_sdw_cache_misses t = t.sdw_cache_misses <- t.sdw_cache_misses + 1
let sdw_cache_misses t = t.sdw_cache_misses

let bump_sdw_cache_evictions t =
  t.sdw_cache_evictions <- t.sdw_cache_evictions + 1

let sdw_cache_evictions t = t.sdw_cache_evictions
let bump_ptw_tlb_hits t = t.ptw_tlb_hits <- t.ptw_tlb_hits + 1
let ptw_tlb_hits t = t.ptw_tlb_hits
let bump_ptw_tlb_misses t = t.ptw_tlb_misses <- t.ptw_tlb_misses + 1
let ptw_tlb_misses t = t.ptw_tlb_misses

let bump_ptw_tlb_evictions t =
  t.ptw_tlb_evictions <- t.ptw_tlb_evictions + 1

let ptw_tlb_evictions t = t.ptw_tlb_evictions
let bump_icache_hits t = t.icache_hits <- t.icache_hits + 1
let icache_hits t = t.icache_hits
let bump_icache_misses t = t.icache_misses <- t.icache_misses + 1
let icache_misses t = t.icache_misses
let bump_icache_evictions t = t.icache_evictions <- t.icache_evictions + 1
let icache_evictions t = t.icache_evictions
let bump_injected t = t.injected <- t.injected + 1
let injected t = t.injected
let bump_retried t = t.retried <- t.retried + 1
let retried t = t.retried
let bump_recovered t = t.recovered <- t.recovered + 1
let recovered t = t.recovered
let bump_quarantined t = t.quarantined <- t.quarantined + 1
let quarantined t = t.quarantined
let bump_degraded t = t.degraded <- t.degraded + 1
let degraded t = t.degraded

let bump_snapshots_written t =
  t.snapshots_written <- t.snapshots_written + 1

let snapshots_written t = t.snapshots_written
let bump_restores t = t.restores <- t.restores + 1
let restores t = t.restores

let bump_restore_audit_rejections t =
  t.restore_audit_rejections <- t.restore_audit_rejections + 1

let restore_audit_rejections t = t.restore_audit_rejections

let bump_journal_replays_skipped t =
  t.journal_replays_skipped <- t.journal_replays_skipped + 1

let journal_replays_skipped t = t.journal_replays_skipped
let bump_watchdog_tripped t = t.watchdog_tripped <- t.watchdog_tripped + 1
let watchdog_tripped t = t.watchdog_tripped
let bump_events_dropped t = t.events_dropped <- t.events_dropped + 1
let events_dropped t = t.events_dropped

let bump_events_sampled_out t =
  t.events_sampled_out <- t.events_sampled_out + 1

let events_sampled_out t = t.events_sampled_out
let bump_spans_sampled_out t = t.spans_sampled_out <- t.spans_sampled_out + 1
let spans_sampled_out t = t.spans_sampled_out

type snapshot = {
  cycles : int;
  instructions : int;
  memory_reads : int;
  memory_writes : int;
  sdw_fetches : int;
  indirections : int;
  traps : int;
  calls_same_ring : int;
  calls_downward : int;
  calls_upward : int;
  returns_same_ring : int;
  returns_upward : int;
  returns_downward : int;
  gatekeeper_entries : int;
  descriptor_switches : int;
  access_violations : int;
  ptw_fetches : int;
  page_faults : int;
  page_evictions : int;
  channel_ops : int;
  sdw_cache_hits : int;
  sdw_cache_misses : int;
  sdw_cache_evictions : int;
  ptw_tlb_hits : int;
  ptw_tlb_misses : int;
  ptw_tlb_evictions : int;
  icache_hits : int;
  icache_misses : int;
  icache_evictions : int;
  injected : int;
  retried : int;
  recovered : int;
  quarantined : int;
  degraded : int;
  snapshots_written : int;
  restores : int;
  restore_audit_rejections : int;
  journal_replays_skipped : int;
  watchdog_tripped : int;
  events_dropped : int;
  events_sampled_out : int;
  spans_sampled_out : int;
}

let snapshot (t : t) : snapshot =
  {
    cycles = t.cycles;
    instructions = t.instructions;
    memory_reads = t.memory_reads;
    memory_writes = t.memory_writes;
    sdw_fetches = t.sdw_fetches;
    indirections = t.indirections;
    traps = t.traps;
    calls_same_ring = t.calls_same_ring;
    calls_downward = t.calls_downward;
    calls_upward = t.calls_upward;
    returns_same_ring = t.returns_same_ring;
    returns_upward = t.returns_upward;
    returns_downward = t.returns_downward;
    gatekeeper_entries = t.gatekeeper_entries;
    descriptor_switches = t.descriptor_switches;
    access_violations = t.access_violations;
    ptw_fetches = t.ptw_fetches;
    page_faults = t.page_faults;
    page_evictions = t.page_evictions;
    channel_ops = t.channel_ops;
    sdw_cache_hits = t.sdw_cache_hits;
    sdw_cache_misses = t.sdw_cache_misses;
    sdw_cache_evictions = t.sdw_cache_evictions;
    ptw_tlb_hits = t.ptw_tlb_hits;
    ptw_tlb_misses = t.ptw_tlb_misses;
    ptw_tlb_evictions = t.ptw_tlb_evictions;
    icache_hits = t.icache_hits;
    icache_misses = t.icache_misses;
    icache_evictions = t.icache_evictions;
    injected = t.injected;
    retried = t.retried;
    recovered = t.recovered;
    quarantined = t.quarantined;
    degraded = t.degraded;
    snapshots_written = t.snapshots_written;
    restores = t.restores;
    restore_audit_rejections = t.restore_audit_rejections;
    journal_replays_skipped = t.journal_replays_skipped;
    watchdog_tripped = t.watchdog_tripped;
    events_dropped = t.events_dropped;
    events_sampled_out = t.events_sampled_out;
    spans_sampled_out = t.spans_sampled_out;
  }

let restore (t : t) (s : snapshot) =
  t.cycles <- s.cycles;
  t.instructions <- s.instructions;
  t.memory_reads <- s.memory_reads;
  t.memory_writes <- s.memory_writes;
  t.sdw_fetches <- s.sdw_fetches;
  t.indirections <- s.indirections;
  t.traps <- s.traps;
  t.calls_same_ring <- s.calls_same_ring;
  t.calls_downward <- s.calls_downward;
  t.calls_upward <- s.calls_upward;
  t.returns_same_ring <- s.returns_same_ring;
  t.returns_upward <- s.returns_upward;
  t.returns_downward <- s.returns_downward;
  t.gatekeeper_entries <- s.gatekeeper_entries;
  t.descriptor_switches <- s.descriptor_switches;
  t.access_violations <- s.access_violations;
  t.ptw_fetches <- s.ptw_fetches;
  t.page_faults <- s.page_faults;
  t.page_evictions <- s.page_evictions;
  t.channel_ops <- s.channel_ops;
  t.sdw_cache_hits <- s.sdw_cache_hits;
  t.sdw_cache_misses <- s.sdw_cache_misses;
  t.sdw_cache_evictions <- s.sdw_cache_evictions;
  t.ptw_tlb_hits <- s.ptw_tlb_hits;
  t.ptw_tlb_misses <- s.ptw_tlb_misses;
  t.ptw_tlb_evictions <- s.ptw_tlb_evictions;
  t.icache_hits <- s.icache_hits;
  t.icache_misses <- s.icache_misses;
  t.icache_evictions <- s.icache_evictions;
  t.injected <- s.injected;
  t.retried <- s.retried;
  t.recovered <- s.recovered;
  t.quarantined <- s.quarantined;
  t.degraded <- s.degraded;
  t.snapshots_written <- s.snapshots_written;
  t.restores <- s.restores;
  t.restore_audit_rejections <- s.restore_audit_rejections;
  t.journal_replays_skipped <- s.journal_replays_skipped;
  t.watchdog_tripped <- s.watchdog_tripped;
  t.events_dropped <- s.events_dropped;
  t.events_sampled_out <- s.events_sampled_out;
  t.spans_sampled_out <- s.spans_sampled_out

let diff ~(before : snapshot) ~(after : snapshot) : snapshot =
  {
    cycles = after.cycles - before.cycles;
    instructions = after.instructions - before.instructions;
    memory_reads = after.memory_reads - before.memory_reads;
    memory_writes = after.memory_writes - before.memory_writes;
    sdw_fetches = after.sdw_fetches - before.sdw_fetches;
    indirections = after.indirections - before.indirections;
    traps = after.traps - before.traps;
    calls_same_ring = after.calls_same_ring - before.calls_same_ring;
    calls_downward = after.calls_downward - before.calls_downward;
    calls_upward = after.calls_upward - before.calls_upward;
    returns_same_ring = after.returns_same_ring - before.returns_same_ring;
    returns_upward = after.returns_upward - before.returns_upward;
    returns_downward = after.returns_downward - before.returns_downward;
    gatekeeper_entries = after.gatekeeper_entries - before.gatekeeper_entries;
    descriptor_switches =
      after.descriptor_switches - before.descriptor_switches;
    access_violations = after.access_violations - before.access_violations;
    ptw_fetches = after.ptw_fetches - before.ptw_fetches;
    page_faults = after.page_faults - before.page_faults;
    page_evictions = after.page_evictions - before.page_evictions;
    channel_ops = after.channel_ops - before.channel_ops;
    sdw_cache_hits = after.sdw_cache_hits - before.sdw_cache_hits;
    sdw_cache_misses = after.sdw_cache_misses - before.sdw_cache_misses;
    sdw_cache_evictions =
      after.sdw_cache_evictions - before.sdw_cache_evictions;
    ptw_tlb_hits = after.ptw_tlb_hits - before.ptw_tlb_hits;
    ptw_tlb_misses = after.ptw_tlb_misses - before.ptw_tlb_misses;
    ptw_tlb_evictions = after.ptw_tlb_evictions - before.ptw_tlb_evictions;
    icache_hits = after.icache_hits - before.icache_hits;
    icache_misses = after.icache_misses - before.icache_misses;
    icache_evictions = after.icache_evictions - before.icache_evictions;
    injected = after.injected - before.injected;
    retried = after.retried - before.retried;
    recovered = after.recovered - before.recovered;
    quarantined = after.quarantined - before.quarantined;
    degraded = after.degraded - before.degraded;
    snapshots_written = after.snapshots_written - before.snapshots_written;
    restores = after.restores - before.restores;
    restore_audit_rejections =
      after.restore_audit_rejections - before.restore_audit_rejections;
    journal_replays_skipped =
      after.journal_replays_skipped - before.journal_replays_skipped;
    watchdog_tripped = after.watchdog_tripped - before.watchdog_tripped;
    events_dropped = after.events_dropped - before.events_dropped;
    events_sampled_out = after.events_sampled_out - before.events_sampled_out;
    spans_sampled_out = after.spans_sampled_out - before.spans_sampled_out;
  }

let add (a : snapshot) (b : snapshot) : snapshot =
  {
    cycles = a.cycles + b.cycles;
    instructions = a.instructions + b.instructions;
    memory_reads = a.memory_reads + b.memory_reads;
    memory_writes = a.memory_writes + b.memory_writes;
    sdw_fetches = a.sdw_fetches + b.sdw_fetches;
    indirections = a.indirections + b.indirections;
    traps = a.traps + b.traps;
    calls_same_ring = a.calls_same_ring + b.calls_same_ring;
    calls_downward = a.calls_downward + b.calls_downward;
    calls_upward = a.calls_upward + b.calls_upward;
    returns_same_ring = a.returns_same_ring + b.returns_same_ring;
    returns_upward = a.returns_upward + b.returns_upward;
    returns_downward = a.returns_downward + b.returns_downward;
    gatekeeper_entries = a.gatekeeper_entries + b.gatekeeper_entries;
    descriptor_switches = a.descriptor_switches + b.descriptor_switches;
    access_violations = a.access_violations + b.access_violations;
    ptw_fetches = a.ptw_fetches + b.ptw_fetches;
    page_faults = a.page_faults + b.page_faults;
    page_evictions = a.page_evictions + b.page_evictions;
    channel_ops = a.channel_ops + b.channel_ops;
    sdw_cache_hits = a.sdw_cache_hits + b.sdw_cache_hits;
    sdw_cache_misses = a.sdw_cache_misses + b.sdw_cache_misses;
    sdw_cache_evictions = a.sdw_cache_evictions + b.sdw_cache_evictions;
    ptw_tlb_hits = a.ptw_tlb_hits + b.ptw_tlb_hits;
    ptw_tlb_misses = a.ptw_tlb_misses + b.ptw_tlb_misses;
    ptw_tlb_evictions = a.ptw_tlb_evictions + b.ptw_tlb_evictions;
    icache_hits = a.icache_hits + b.icache_hits;
    icache_misses = a.icache_misses + b.icache_misses;
    icache_evictions = a.icache_evictions + b.icache_evictions;
    injected = a.injected + b.injected;
    retried = a.retried + b.retried;
    recovered = a.recovered + b.recovered;
    quarantined = a.quarantined + b.quarantined;
    degraded = a.degraded + b.degraded;
    snapshots_written = a.snapshots_written + b.snapshots_written;
    restores = a.restores + b.restores;
    restore_audit_rejections =
      a.restore_audit_rejections + b.restore_audit_rejections;
    journal_replays_skipped =
      a.journal_replays_skipped + b.journal_replays_skipped;
    watchdog_tripped = a.watchdog_tripped + b.watchdog_tripped;
    events_dropped = a.events_dropped + b.events_dropped;
    events_sampled_out = a.events_sampled_out + b.events_sampled_out;
    spans_sampled_out = a.spans_sampled_out + b.spans_sampled_out;
  }

(* Every snapshot field by name, in declaration order.  The metrics
   exporters iterate this so a counter added to the record shows up in
   every export format (and in the coverage test) by extending this
   one list. *)
let fields (s : snapshot) : (string * int) list =
  [
    ("cycles", s.cycles);
    ("instructions", s.instructions);
    ("memory_reads", s.memory_reads);
    ("memory_writes", s.memory_writes);
    ("sdw_fetches", s.sdw_fetches);
    ("indirections", s.indirections);
    ("traps", s.traps);
    ("calls_same_ring", s.calls_same_ring);
    ("calls_downward", s.calls_downward);
    ("calls_upward", s.calls_upward);
    ("returns_same_ring", s.returns_same_ring);
    ("returns_upward", s.returns_upward);
    ("returns_downward", s.returns_downward);
    ("gatekeeper_entries", s.gatekeeper_entries);
    ("descriptor_switches", s.descriptor_switches);
    ("access_violations", s.access_violations);
    ("ptw_fetches", s.ptw_fetches);
    ("page_faults", s.page_faults);
    ("page_evictions", s.page_evictions);
    ("channel_ops", s.channel_ops);
    ("sdw_cache_hits", s.sdw_cache_hits);
    ("sdw_cache_misses", s.sdw_cache_misses);
    ("sdw_cache_evictions", s.sdw_cache_evictions);
    ("ptw_tlb_hits", s.ptw_tlb_hits);
    ("ptw_tlb_misses", s.ptw_tlb_misses);
    ("ptw_tlb_evictions", s.ptw_tlb_evictions);
    ("icache_hits", s.icache_hits);
    ("icache_misses", s.icache_misses);
    ("icache_evictions", s.icache_evictions);
    ("injected", s.injected);
    ("retried", s.retried);
    ("recovered", s.recovered);
    ("quarantined", s.quarantined);
    ("degraded", s.degraded);
    ("snapshots_written", s.snapshots_written);
    ("restores", s.restores);
    ("restore_audit_rejections", s.restore_audit_rejections);
    ("journal_replays_skipped", s.journal_replays_skipped);
    ("watchdog_tripped", s.watchdog_tripped);
    ("events_dropped", s.events_dropped);
    ("events_sampled_out", s.events_sampled_out);
    ("spans_sampled_out", s.spans_sampled_out);
  ]

(* Inverse of [fields]: rebuild a snapshot from [(name, value)] pairs.
   Shape-checked so a snapshot image from a different counter set is a
   typed decode error, not a silent misread — and the error names the
   offending fields, so a fleet report that meets a build with a
   drifted counter schema says exactly which names drifted rather
   than masking them. *)
let of_fields (l : (string * int) list) : (snapshot, string) result =
  let zero = snapshot (create ()) in
  let expected = List.map fst (fields zero) in
  let given = List.map fst l in
  if given <> expected then begin
    let missing = List.filter (fun n -> not (List.mem n given)) expected in
    let unknown = List.filter (fun n -> not (List.mem n expected)) given in
    let part label = function
      | [] -> []
      | names -> [ Printf.sprintf "%s: %s" label (String.concat ", " names) ]
    in
    let detail =
      part "unknown counter fields" unknown
      @ part "missing counter fields" missing
      @
      if unknown = [] && missing = [] then
        [ "counter fields out of order or duplicated" ]
      else []
    in
    Error (String.concat "; " detail)
  end
  else
    let get name = List.assoc name l in
    Ok
      {
        cycles = get "cycles";
        instructions = get "instructions";
        memory_reads = get "memory_reads";
        memory_writes = get "memory_writes";
        sdw_fetches = get "sdw_fetches";
        indirections = get "indirections";
        traps = get "traps";
        calls_same_ring = get "calls_same_ring";
        calls_downward = get "calls_downward";
        calls_upward = get "calls_upward";
        returns_same_ring = get "returns_same_ring";
        returns_upward = get "returns_upward";
        returns_downward = get "returns_downward";
        gatekeeper_entries = get "gatekeeper_entries";
        descriptor_switches = get "descriptor_switches";
        access_violations = get "access_violations";
        ptw_fetches = get "ptw_fetches";
        page_faults = get "page_faults";
        page_evictions = get "page_evictions";
        channel_ops = get "channel_ops";
        sdw_cache_hits = get "sdw_cache_hits";
        sdw_cache_misses = get "sdw_cache_misses";
        sdw_cache_evictions = get "sdw_cache_evictions";
        ptw_tlb_hits = get "ptw_tlb_hits";
        ptw_tlb_misses = get "ptw_tlb_misses";
        ptw_tlb_evictions = get "ptw_tlb_evictions";
        icache_hits = get "icache_hits";
        icache_misses = get "icache_misses";
        icache_evictions = get "icache_evictions";
        injected = get "injected";
        retried = get "retried";
        recovered = get "recovered";
        quarantined = get "quarantined";
        degraded = get "degraded";
        snapshots_written = get "snapshots_written";
        restores = get "restores";
        restore_audit_rejections = get "restore_audit_rejections";
        journal_replays_skipped = get "journal_replays_skipped";
        watchdog_tripped = get "watchdog_tripped";
        events_dropped = get "events_dropped";
        events_sampled_out = get "events_sampled_out";
        spans_sampled_out = get "spans_sampled_out";
      }

(* Channel operations print only when the program actually started
   one, so an I/O-free run's counter block is unchanged. *)
let pp_channel ppf (s : snapshot) =
  if s.channel_ops <> 0 then
    Format.fprintf ppf "@,channel ops         %8d" s.channel_ops

(* The robustness line appears only when injection was active, so an
   injector-off run prints exactly what it printed before the fault-
   injection subsystem existed. *)
let pp_robustness ppf (s : snapshot) =
  if
    s.injected <> 0 || s.retried <> 0 || s.recovered <> 0
    || s.quarantined <> 0 || s.degraded <> 0
  then
    Format.fprintf ppf
      "@,injected            %8d@,\
       retried             %8d@,\
       recovered           %8d@,\
       quarantined         %8d@,\
       degraded            %8d"
      s.injected s.retried s.recovered s.quarantined s.degraded

(* Likewise, the trace-pipeline line appears only when the sampler or
   the ring buffer actually discarded something, so a fully retained
   trace prints exactly what it printed before sampling existed. *)
let pp_trace_stats ppf (s : snapshot) =
  if s.events_dropped <> 0 || s.events_sampled_out <> 0 || s.spans_sampled_out <> 0
  then
    Format.fprintf ppf
      "@,events dropped      %8d@,\
       events sampled out  %8d@,\
       spans sampled out   %8d"
      s.events_dropped s.events_sampled_out s.spans_sampled_out

let pp_snapshot ppf (s : snapshot) =
  Format.fprintf ppf
    "@[<v>cycles              %8d@,\
     instructions        %8d@,\
     memory reads        %8d@,\
     memory writes       %8d@,\
     SDW fetches         %8d@,\
     indirections        %8d@,\
     traps               %8d@,\
     calls same-ring     %8d@,\
     calls downward      %8d@,\
     calls upward        %8d@,\
     returns same-ring   %8d@,\
     returns upward      %8d@,\
     returns downward    %8d@,\
     gatekeeper entries  %8d@,\
     descriptor switches %8d@,\
     access violations   %8d@,\
     PTW fetches         %8d@,\
     page faults         %8d@,\
     page evictions      %8d@,\
     SDW cache h/m/e     %8d %8d %8d@,\
     PTW TLB h/m/e       %8d %8d %8d@,\
     icache h/m/e        %8d %8d %8d%a%a%a@]"
    s.cycles s.instructions s.memory_reads s.memory_writes s.sdw_fetches
    s.indirections s.traps s.calls_same_ring s.calls_downward s.calls_upward
    s.returns_same_ring s.returns_upward s.returns_downward
    s.gatekeeper_entries s.descriptor_switches s.access_violations
    s.ptw_fetches s.page_faults s.page_evictions s.sdw_cache_hits
    s.sdw_cache_misses s.sdw_cache_evictions s.ptw_tlb_hits s.ptw_tlb_misses
    s.ptw_tlb_evictions s.icache_hits s.icache_misses s.icache_evictions
    pp_channel s pp_robustness s pp_trace_stats s
