(** Bounded, permission-masked, sealable capabilities — the data model
    behind {!Isa.Machine.Ring_capability}.

    Pure values: deriving, sealing, unsealing and attenuating allocate
    fresh capabilities and never mutate.  The machine keeps the live
    state (tag bits in {!Hw.Memory}, the sealed-return stack in
    {!Isa.Machine}); this module only answers what a capability
    permits.  See docs/CAPABILITIES.md for how the pieces map onto the
    1971 ring architecture. *)

type perms = { load : bool; store : bool; exec : bool }

val no_perms : perms

type t = {
  base : int;  (** absolute word of the region's first word *)
  bound : int;  (** region length in words *)
  perms : perms;
  entries : int;  (** sealed entry capabilities packed from word 0 *)
  sealed : bool;
  otype : int;  (** meaningful only when [sealed] *)
}

val v : ?perms:perms -> ?entries:int -> base:int -> bound:int -> unit -> t
(** An unsealed capability; raises [Invalid_argument] on a negative
    bound or entry count. *)

val of_access :
  Rings.Access.t -> ring:Rings.Ring.t -> base:int -> bound:int -> t
(** The capability a domain holds on a segment: each permission bit is
    the SDW flag AND the bracket predicate at [ring]
    ({!Rings.Policy.permitted}), so the derived mask agrees with the
    ring hardware's verdict by construction, and {!monotone} holds. *)

val in_bounds : t -> wordno:int -> bool

val seal : t -> otype:int -> t option
(** [None] when already sealed — sealing is not idempotent. *)

val unseal : t -> otype:int -> t option
(** [None] unless sealed under exactly [otype]. *)

val attenuate : t -> perms:perms -> t
(** Intersects permission masks: derived capabilities only narrow. *)

val perms_subset : perms -> perms -> bool
(** [perms_subset a b]: every permission in [a] is in [b]. *)

val is_attenuation_of : t -> t -> bool
(** Region contained and permissions a subset: the monotonicity
    relation the unit tests assert over seal/unseal/attenuate. *)

val monotone : Rings.Access.t -> base:int -> bound:int -> bool
(** For every adjacent ring pair, the capability derived at the less
    privileged ring holds a subset of the other's permissions. *)

type sealed_return = { sr_otype : int; sr_segno : int; sr_wordno : int }
(** The caller's continuation, sealed under the caller's domain: what
    a cross-domain CALL pushes on the machine's capability stack and
    the matching RETURN unseals.  Replaces the ring machine's
    crossing-stack discipline. *)

val seal_return : otype:int -> segno:int -> wordno:int -> sealed_return
val unseal_return : sealed_return -> otype:int -> (int * int) option
(** [Some (segno, wordno)] when [otype] matches the sealing domain. *)

val pp_perms : Format.formatter -> perms -> unit
val pp : Format.formatter -> t -> unit
val pp_sealed_return : Format.formatter -> sealed_return -> unit
