(* The tagged-capability reading of the Fig. 3 segment descriptor.

   A capability is a bounded region plus a permission mask, optionally
   sealed under an object type.  In the capability backend every SDW
   the kernel installs *is* a capability at rest: its two words carry
   validity tags in the tag store ({!Hw.Memory}), and translation
   derives from it, per access, the capability the effective domain
   actually holds — the permission mask below, which is the bracket
   predicate of the ring machine evaluated at that domain.  That
   construction makes attenuation monotonic by the same argument that
   makes brackets nested: a higher (less privileged) domain's mask is
   always a subset of a lower one's ({!monotone}). *)

type perms = { load : bool; store : bool; exec : bool }

let no_perms = { load = false; store = false; exec = false }

type t = {
  base : int;  (** absolute word of the region's first word *)
  bound : int;  (** region length in words *)
  perms : perms;
  entries : int;  (** sealed entry capabilities packed from word 0 *)
  sealed : bool;
  otype : int;  (** meaningful only when [sealed] *)
}

let v ?(perms = no_perms) ?(entries = 0) ~base ~bound () =
  if bound < 0 then invalid_arg "Capability.v: negative bound";
  if entries < 0 then invalid_arg "Capability.v: negative entries";
  { base; bound; perms; entries; sealed = false; otype = 0 }

(* The capability a domain holds on a segment, derived from the SDW
   access field: each permission is the corresponding flag AND the
   bracket predicate at [ring].  [Policy.permitted] is the ring
   machine's own reading of the same question, so the derived mask
   agrees with the hardware verdict by construction. *)
let of_access (a : Rings.Access.t) ~ring ~base ~bound =
  {
    base;
    bound;
    perms =
      {
        load = Rings.Policy.permitted a ~ring Rings.Policy.Read;
        store = Rings.Policy.permitted a ~ring Rings.Policy.Write;
        exec = Rings.Policy.permitted a ~ring Rings.Policy.Execute;
      };
    entries = a.Rings.Access.gates;
    sealed = false;
    otype = 0;
  }

let in_bounds t ~wordno = wordno >= 0 && wordno < t.bound

(* Sealing renders a capability unusable for load/store/exec until
   unsealed with the matching object type — the transfer-of-control
   token of the capability machine.  Sealing twice, or unsealing with
   the wrong type (or an unsealed capability at all), is refused. *)
let seal t ~otype =
  if t.sealed then None else Some { t with sealed = true; otype }

let unseal t ~otype =
  if t.sealed && t.otype = otype then Some { t with sealed = false; otype = 0 }
  else None

(* Monotonic attenuation: deriving may only clear permission bits and
   shrink the region, never widen either. *)
let attenuate t ~perms =
  {
    t with
    perms =
      {
        load = t.perms.load && perms.load;
        store = t.perms.store && perms.store;
        exec = t.perms.exec && perms.exec;
      };
  }

let perms_subset a b =
  (not a.load || b.load) && (not a.store || b.store)
  && (not a.exec || b.exec)

let is_attenuation_of child parent =
  child.base >= parent.base
  && child.base + child.bound <= parent.base + parent.bound
  && perms_subset child.perms parent.perms

(* The nesting property the backend's verdict parity rests on: for any
   access field, the capability derived at a less privileged ring
   never holds a permission the more privileged ring's lacks. *)
let monotone (a : Rings.Access.t) ~base ~bound =
  let rec go r =
    if r >= Rings.Ring.count - 1 then true
    else
      let lo = of_access a ~ring:(Rings.Ring.v r) ~base ~bound in
      let hi = of_access a ~ring:(Rings.Ring.v (r + 1)) ~base ~bound in
      perms_subset hi.perms lo.perms && go (r + 1)
  in
  go 0

(* {1 Sealed return capabilities}

   What a cross-domain CALL pushes and the matching RETURN pops: the
   caller's continuation (segno|wordno), sealed under the caller's
   domain so only a return *to* that domain can unseal it.  This is
   the capability machine's replacement for the ring machine's
   crossing-stack discipline. *)

type sealed_return = { sr_otype : int; sr_segno : int; sr_wordno : int }

let seal_return ~otype ~segno ~wordno =
  { sr_otype = otype; sr_segno = segno; sr_wordno = wordno }

let unseal_return sr ~otype =
  if sr.sr_otype = otype then Some (sr.sr_segno, sr.sr_wordno) else None

let pp_perms ppf p =
  Format.fprintf ppf "%c%c%c"
    (if p.load then 'r' else '-')
    (if p.store then 'w' else '-')
    (if p.exec then 'x' else '-')

let pp ppf t =
  Format.fprintf ppf "cap[%d+%d %a%s%s]" t.base t.bound pp_perms t.perms
    (if t.entries > 0 then Printf.sprintf " entries=%d" t.entries else "")
    (if t.sealed then Printf.sprintf " sealed:%d" t.otype else "")

let pp_sealed_return ppf sr =
  Format.fprintf ppf "retcap[%d|%06o sealed:%d]" sr.sr_segno sr.sr_wordno
    sr.sr_otype
