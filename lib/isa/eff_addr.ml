type operand =
  | Memory of { effective : Rings.Effective_ring.t; addr : Hw.Addr.t }
  | Immediate of Hw.Word.t
  | Absent

exception Runaway_indirection of Hw.Addr.t

let max_indirections = 64

let sign_extend_18 v =
  if v land 0o400000 <> 0 then Hw.Word.of_signed (v - (1 lsl 18)) else v

let wordno_mask = (1 lsl 18) - 1

(* Follow the indirection chain, updating the effective ring per
   Fig. 5 in hardware mode. *)
let rec indirect m ~depth ~effective (addr : Hw.Addr.t) =
  if depth > max_indirections then raise (Runaway_indirection addr);
  match Machine.resolve m addr with
  | Error _ as e -> e
  | Ok (sdw, abs) -> (
      match Machine.validate_read m sdw ~effective with
      | Error _ as e -> e
      | Ok () ->
          Trace.Counters.bump_indirections m.Machine.counters;
          let ind = Indword.decode (Hw.Memory.read m.Machine.mem abs) in
          let effective =
            match m.Machine.mode with
            | Machine.Ring_software_645 -> effective
            | Machine.Ring_hardware | Machine.Ring_capability ->
                let container_write_top =
                  if m.Machine.use_r1_in_indirection then
                    Rings.Brackets.write_bracket_top
                      sdw.Hw.Sdw.access.Rings.Access.brackets
                  else Rings.Ring.r0
                in
                Rings.Effective_ring.via_indirect_word effective
                  ~ind_ring:ind.Indword.ring ~container_write_top
          in
          if ind.Indword.indirect then
            indirect m ~depth:(depth + 1) ~effective ind.Indword.addr
          else Ok (Memory { effective; addr = ind.Indword.addr }))

let compute m (instr : Instr.t) =
  match Opcode.operand_class instr.opcode with
  | Opcode.No_operand -> Ok Absent
  | _ -> (
      match instr.base with
      | Instr.Immediate -> Ok (Immediate (sign_extend_18 instr.offset))
      | Instr.Ipr_relative | Instr.Pr _ ->
          let regs = m.Machine.regs in
          let ipr = regs.Hw.Registers.ipr in
          let effective =
            Rings.Effective_ring.start ipr.Hw.Registers.ring
          in
          let segno, wordno, effective =
            match instr.base with
            | Instr.Ipr_relative ->
                (ipr.Hw.Registers.addr.Hw.Addr.segno, instr.offset, effective)
            | Instr.Pr n ->
                let p = Hw.Registers.get_pr regs n in
                let effective =
                  match m.Machine.mode with
                  | Machine.Ring_software_645 -> effective
                  | Machine.Ring_hardware | Machine.Ring_capability ->
                      Rings.Effective_ring.via_pointer_register effective
                        ~pr_ring:p.Hw.Registers.ring
                in
                ( p.Hw.Registers.addr.Hw.Addr.segno,
                  (p.Hw.Registers.addr.Hw.Addr.wordno + instr.offset)
                  land wordno_mask,
                  effective )
            | Instr.Immediate -> assert false
          in
          let wordno =
            if instr.indexed then
              (wordno + regs.Hw.Registers.xs.(instr.xr)) land wordno_mask
            else wordno
          in
          let addr = Hw.Addr.v ~segno ~wordno in
          if instr.indirect then indirect m ~depth:1 ~effective addr
          else Ok (Memory { effective; addr }))
