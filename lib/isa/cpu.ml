type outcome = Running | Halted | Faulted of Rings.Fault.t

let ( let* ) = Result.bind

(* Fig. 4: retrieve the next instruction, validating the execute
   bracket as the SDW becomes available during address translation.
   The whole sequence — translation, validation, word read, decode —
   is memoized by the machine's fetch cache. *)
let fetch m = Machine.fetch_instr m

let step_unprofiled m =
  if m.Machine.halted then Halted
  else begin
    let regs = m.Machine.regs in
    let at = regs.Hw.Registers.ipr in
    let result =
      let* instr = fetch m in
      Trace.Counters.bump_instructions m.Machine.counters;
      Trace.Counters.charge m.Machine.counters Hw.Costs.instruction_overhead;
      (* All event construction sits behind the enabled check, and the
         enabled path is a few unboxed stores — no disassembly, no
         variant: the text is re-decoded lazily at export from the
         segment image (Machine registers the resolver). *)
      if Trace.Event.enabled m.Machine.log then
        Trace.Event.record_instruction m.Machine.log
          ~ring:(Rings.Ring.to_int at.Hw.Registers.ring)
          ~segno:at.Hw.Registers.addr.Hw.Addr.segno
          ~wordno:at.Hw.Registers.addr.Hw.Addr.wordno;
      (* Advance IPR before executing so transfers and TSX see the
         address of the next sequential instruction. *)
      regs.Hw.Registers.ipr <-
        {
          at with
          Hw.Registers.addr = Hw.Addr.offset at.Hw.Registers.addr 1;
        };
      let* operand = Eff_addr.compute m instr in
      Exec.perform m instr operand
    in
    match result with
    | Ok Exec.Continue when m.Machine.inhibit ->
        (* Interrupts are inhibited between a trap and its RTRAP: the
           timer and channel completions wait. *)
        Running
    | Ok Exec.Continue -> (
        (* Injected faults are asynchronous, like the timer and channel
           completions: they fire between instructions and honour the
           same inhibit discipline (the poll above only runs on this
           uninhibited branch, so a fault due during a handler waits
           for RTRAP).  Delivery opens a Recovery span that the kernel
           closes at its recovery decision. *)
        match Machine.poll_injection m with
        | Some fault ->
            if Trace.Span.enabled m.Machine.spans then
              Trace.Span.open_span m.Machine.spans ~kind:Trace.Event.Recovery
                ~from_ring:(Rings.Ring.to_int (Machine.ring m))
                ~to_ring:(Rings.Ring.to_int (Machine.ring m))
                ~segno:regs.Hw.Registers.ipr.Hw.Registers.addr.Hw.Addr.segno
                ~wordno:regs.Hw.Registers.ipr.Hw.Registers.addr.Hw.Addr.wordno
                ~cycles:(Trace.Counters.cycles m.Machine.counters);
            Machine.take_fault m ~at:regs.Hw.Registers.ipr fault;
            if m.Machine.trap_config = None then Faulted fault else Running
        | None -> (
        (* The arena's billing ceiling is asynchronous in the same
           sense: it derails the stream between instructions, so a
           quarantined tenant's saved state sits at an instruction
           boundary.  Detached ([None], the default) it costs one
           option test per step. *)
        match m.Machine.cycle_limit with
        | Some limit
          when Trace.Counters.cycles m.Machine.counters >= limit ->
            m.Machine.cycle_limit <- None;
            let fault =
              Rings.Fault.Quota_exhausted { resource = "cycles"; limit }
            in
            Machine.take_fault m ~at:regs.Hw.Registers.ipr fault;
            if m.Machine.trap_config = None then Faulted fault else Running
        | _ -> (
        (* Channel I/O completes between instructions. *)
        (match m.Machine.io_countdown with
        | Some n when n > 1 -> m.Machine.io_countdown <- Some (n - 1)
        | _ -> ());
        match m.Machine.io_countdown with
        | Some 1 ->
            m.Machine.io_countdown <- None;
            (* An injected channel failure surfaces at completion
               time: the request stays posted so the supervisor can
               retry the transfer. *)
            let fault =
              if m.Machine.io_fail_pending then begin
                m.Machine.io_fail_pending <- false;
                if Trace.Span.enabled m.Machine.spans then
                  Trace.Span.open_span m.Machine.spans
                    ~kind:Trace.Event.Recovery
                    ~from_ring:(Rings.Ring.to_int (Machine.ring m))
                    ~to_ring:(Rings.Ring.to_int (Machine.ring m))
                    ~segno:
                      regs.Hw.Registers.ipr.Hw.Registers.addr.Hw.Addr.segno
                    ~wordno:
                      regs.Hw.Registers.ipr.Hw.Registers.addr.Hw.Addr.wordno
                    ~cycles:(Trace.Counters.cycles m.Machine.counters);
                Rings.Fault.Io_error
              end
              else Rings.Fault.Io_completion
            in
            Machine.take_fault m ~at:regs.Hw.Registers.ipr fault;
            if m.Machine.trap_config = None then Faulted fault else Running
        | _ -> (
        (* The interval timer ticks once per retired instruction and
           fires between instructions, so the saved state addresses
           the next one. *)
        match m.Machine.timer with
        | Some n when n <= 1 ->
            m.Machine.timer <- None;
            let fault = Rings.Fault.Timer_runout in
            Machine.take_fault m ~at:regs.Hw.Registers.ipr fault;
            if m.Machine.trap_config = None then Faulted fault else Running
        | Some n ->
            m.Machine.timer <- Some (n - 1);
            Running
        | None -> Running))))
    | Ok Exec.Halt ->
        m.Machine.halted <- true;
        Halted
    | Error fault ->
        Machine.take_fault m ~at fault;
        if m.Machine.trap_config = None then Faulted fault
        else
          (* The processor transferred to the simulated supervisor's
             vector; execution continues there. *)
          Running
  end

(* Profile attribution wraps the whole step so the cycle delta covers
   everything the instruction caused — address formation, execution,
   and any trap-entry cost — attributed to the ring and segment the
   instruction was fetched from.  Disabled, the wrapper is one bool
   test. *)
let step m =
  if not (Trace.Profile.enabled m.Machine.profile) then step_unprofiled m
  else begin
    let at = m.Machine.regs.Hw.Registers.ipr in
    let c0 = Trace.Counters.cycles m.Machine.counters in
    let i0 = Trace.Counters.instructions m.Machine.counters in
    let outcome = step_unprofiled m in
    let dc = Trace.Counters.cycles m.Machine.counters - c0 in
    let di = Trace.Counters.instructions m.Machine.counters - i0 in
    if dc <> 0 || di <> 0 then
      Trace.Profile.attribute m.Machine.profile
        ~ring:(Rings.Ring.to_int at.Hw.Registers.ring)
        ~segno:at.Hw.Registers.addr.Hw.Addr.segno ~cycles:dc ~instructions:di;
    outcome
  end

let run ?(max_instructions = 1_000_000) m =
  let rec loop n =
    if n = 0 then Running
    else
      match step m with Running -> loop (n - 1) | other -> other
  in
  loop max_instructions
