type action = Continue | Halt

let ( let* ) = Result.bind

let illegal (instr : Instr.t) =
  Error (Rings.Fault.Illegal_opcode { word = Instr.encode instr })

(* Fig. 6, left side: validate then read the operand. *)
let read_operand m instr operand =
  match operand with
  | Eff_addr.Immediate w -> Ok w
  | Eff_addr.Absent -> illegal instr
  | Eff_addr.Memory { effective; addr } ->
      let* sdw, abs = Machine.resolve m addr in
      let* () = Machine.validate_read m sdw ~effective in
      Ok (Hw.Memory.read m.Machine.mem abs)

(* Fig. 6, right side: validate then write the operand. *)
let write_operand m instr operand w =
  match operand with
  | Eff_addr.Immediate _ | Eff_addr.Absent -> illegal instr
  | Eff_addr.Memory { effective; addr } ->
      let* sdw, abs = Machine.resolve m addr in
      let* () = Machine.validate_write m sdw ~effective in
      Hw.Memory.write m.Machine.mem abs w;
      Ok ()

let memory_operand instr operand =
  match operand with
  | Eff_addr.Memory { effective; addr } -> Ok (effective, addr)
  | Eff_addr.Immediate _ | Eff_addr.Absent -> illegal instr

let set_a m w =
  let regs = m.Machine.regs in
  regs.Hw.Registers.a <- w;
  Hw.Registers.set_indicators regs w

let set_q m w =
  let regs = m.Machine.regs in
  regs.Hw.Registers.q <- w;
  Hw.Registers.set_indicators regs w

(* Fig. 7: advance check and performance of ordinary transfers. *)
let transfer m instr operand =
  let* effective, addr = memory_operand instr operand in
  let regs = m.Machine.regs in
  let exec = regs.Hw.Registers.ipr.Hw.Registers.ring in
  let* sdw, _abs = Machine.resolve m addr in
  let* () = Machine.validate_transfer m sdw ~exec ~effective in
  regs.Hw.Registers.ipr <- { Hw.Registers.ring = exec; addr };
  Ok Continue

let conditional_transfer m instr operand condition =
  if condition then transfer m instr operand else Ok Continue

let binop_a m instr operand f =
  let* w = read_operand m instr operand in
  set_a m (f m.Machine.regs.Hw.Registers.a w);
  Ok Continue

let binop_q m instr operand f =
  let* w = read_operand m instr operand in
  set_q m (f m.Machine.regs.Hw.Registers.q w);
  Ok Continue

let perform m (instr : Instr.t) operand =
  let regs = m.Machine.regs in
  let* () =
    if Opcode.privileged instr.opcode then
      Rings.Policy.validate_privileged
        ~ring:regs.Hw.Registers.ipr.Hw.Registers.ring
    else Ok ()
  in
  match instr.opcode with
  | Opcode.NOP -> Ok Continue
  | Opcode.HALT -> Ok Halt
  | Opcode.LDA ->
      let* w = read_operand m instr operand in
      set_a m w;
      Ok Continue
  | Opcode.STA ->
      let* () = write_operand m instr operand regs.Hw.Registers.a in
      Ok Continue
  | Opcode.LDQ ->
      let* w = read_operand m instr operand in
      set_q m w;
      Ok Continue
  | Opcode.STQ ->
      let* () = write_operand m instr operand regs.Hw.Registers.q in
      Ok Continue
  | Opcode.LDX ->
      let* w = read_operand m instr operand in
      regs.Hw.Registers.xs.(instr.xr) <- w land ((1 lsl 18) - 1);
      Ok Continue
  | Opcode.STX ->
      let* () =
        write_operand m instr operand regs.Hw.Registers.xs.(instr.xr)
      in
      Ok Continue
  | Opcode.ADA -> binop_a m instr operand Hw.Word.add
  | Opcode.SBA -> binop_a m instr operand Hw.Word.sub
  | Opcode.MPA -> binop_a m instr operand Hw.Word.mul
  | Opcode.DVA ->
      let* w = read_operand m instr operand in
      (match Hw.Word.div regs.Hw.Registers.a w with
      | None -> Error Rings.Fault.Divide_by_zero
      | Some q ->
          set_a m q;
          Ok Continue)
  | Opcode.ADQ -> binop_q m instr operand Hw.Word.add
  | Opcode.SBQ -> binop_q m instr operand Hw.Word.sub
  | Opcode.ANA -> binop_a m instr operand Hw.Word.logand
  | Opcode.ORA -> binop_a m instr operand Hw.Word.logor
  | Opcode.XRA -> binop_a m instr operand Hw.Word.logxor
  | Opcode.CMPA ->
      let* w = read_operand m instr operand in
      Hw.Registers.set_indicators regs
        (Hw.Word.sub regs.Hw.Registers.a w);
      Ok Continue
  | Opcode.AOS -> (
      (* Read-modify-write: both Fig. 6 checks apply. *)
      match operand with
      | Eff_addr.Immediate _ | Eff_addr.Absent -> illegal instr
      | Eff_addr.Memory { effective; addr } ->
          let* sdw, abs = Machine.resolve m addr in
          let* () = Machine.validate_read m sdw ~effective in
          let* () = Machine.validate_write m sdw ~effective in
          let w = Hw.Word.add (Hw.Memory.read m.Machine.mem abs) 1 in
          Hw.Memory.write m.Machine.mem abs w;
          Hw.Registers.set_indicators regs w;
          Ok Continue)
  | Opcode.STZ ->
      let* () = write_operand m instr operand 0 in
      Ok Continue
  | Opcode.ALS ->
      let* _effective, addr = memory_operand instr operand in
      set_a m
        (Hw.Word.of_int
           (regs.Hw.Registers.a lsl min addr.Hw.Addr.wordno Hw.Word.bits));
      Ok Continue
  | Opcode.ARS ->
      let* _effective, addr = memory_operand instr operand in
      set_a m
        (Hw.Word.of_signed
           (Hw.Word.to_signed regs.Hw.Registers.a
           asr min addr.Hw.Addr.wordno Hw.Word.bits));
      Ok Continue
  | Opcode.TRA -> transfer m instr operand
  | Opcode.TZE ->
      conditional_transfer m instr operand regs.Hw.Registers.ind_zero
  | Opcode.TNZ ->
      conditional_transfer m instr operand
        (not regs.Hw.Registers.ind_zero)
  | Opcode.TMI ->
      conditional_transfer m instr operand regs.Hw.Registers.ind_negative
  | Opcode.TPL ->
      conditional_transfer m instr operand
        (not regs.Hw.Registers.ind_negative)
  | Opcode.TSX ->
      (* IPR is already advanced: it holds the return address. *)
      regs.Hw.Registers.xs.(instr.xr) <-
        regs.Hw.Registers.ipr.Hw.Registers.addr.Hw.Addr.wordno;
      transfer m instr operand
  | Opcode.EAP ->
      (* Fig. 7: loads PRn from TPR; the operand is not referenced and
         no access validation is required. *)
      let* effective, addr = memory_operand instr operand in
      Hw.Registers.set_pr regs instr.xr
        { Hw.Registers.ring = Rings.Effective_ring.ring effective; addr };
      Ok Continue
  | Opcode.SPR ->
      let p = Hw.Registers.get_pr regs instr.xr in
      let* () =
        write_operand m instr operand (Indword.encode (Indword.of_ptr p))
      in
      Ok Continue
  | Opcode.EAA ->
      let* _effective, addr = memory_operand instr operand in
      set_a m addr.Hw.Addr.wordno;
      Ok Continue
  | Opcode.CALL ->
      let* effective, addr = memory_operand instr operand in
      let* () = Call_return.call m ~effective ~addr in
      Ok Continue
  | Opcode.RETN ->
      let* effective, addr = memory_operand instr operand in
      let* () = Call_return.retn m ~effective ~addr in
      Ok Continue
  | Opcode.LDBR ->
      regs.Hw.Registers.dbr <-
        {
          Hw.Registers.base = Hw.Word.field ~pos:14 ~width:21 regs.Hw.Registers.a;
          bound = Hw.Word.field ~pos:0 ~width:14 regs.Hw.Registers.a;
          stack_base = Hw.Word.field ~pos:0 ~width:14 regs.Hw.Registers.q;
        };
      Ok Continue
  | Opcode.SIOC ->
      (* Start an I/O channel operation: the channel runs for a fixed
         number of instruction times and then raises the completion
         trap.  What matters for the reproduction is that SIOC is
         ring-0-only and that completions are one of the trap
         sources. *)
      Trace.Counters.bump_channel_ops m.Machine.counters;
      m.Machine.io_countdown <- Some 20;
      Ok Continue
  | Opcode.SIOT ->
      (* Read the channel control word pair and arm the channel; the
         supervisor performs the transfer at completion time. *)
      let* _effective, addr = memory_operand instr operand in
      let* _, abs0 = Machine.resolve m addr in
      let w0 = Hw.Memory.read m.Machine.mem abs0 in
      let* _, abs1 = Machine.resolve m (Hw.Addr.offset addr 1) in
      let w1 = Hw.Memory.read m.Machine.mem abs1 in
      let buffer = (Indword.decode w0).Indword.addr in
      let direction =
        if Hw.Word.field ~pos:17 ~width:1 w1 = 0 then `Read else `Write
      in
      let count = Hw.Word.field ~pos:0 ~width:17 w1 in
      Trace.Counters.bump_channel_ops m.Machine.counters;
      m.Machine.io_request <- Some { Machine.ccw = addr; buffer; direction; count };
      m.Machine.io_countdown <- Some (20 + (2 * count));
      Ok Continue
  | Opcode.RTRAP ->
      (* Restoring with nothing saved is a program error, not a
         simulator crash. *)
      if m.Machine.saved = None && m.Machine.trap_config = None then
        illegal instr
      else begin
        Machine.restore_saved m;
        Ok Continue
      end
  | Opcode.MME ->
      (* A deliberate trap: the supervisor dispatches on the code. *)
      Error (Rings.Fault.Service_call { code = instr.offset })
