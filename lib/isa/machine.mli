(** A simulated processor plus its memory: the unit the CPU steps.

    A machine runs in one of three protection modes:

    - {!Ring_hardware}: the paper's proposal.  The bracket and gate
      fields of each SDW are honoured on every reference, the
      effective ring is maintained through address formation, and CALL
      and RETURN switch rings without software intervention.

    - {!Ring_software_645}: the baseline — the initial Multics on the
      Honeywell 645, which had only read/write/execute flags per SDW.
      The ring fields in SDWs, indirect words and pointer registers
      are ignored by the hardware; references are validated against
      the flags of whatever descriptor segment the DBR currently names
      (one per ring per process, maintained by software); CALL and
      RETURN never switch rings, and any cross-ring transfer surfaces
      as a fault for the software gatekeeper.

    - {!Ring_capability}: the capability-machine reading of the same
      layout.  Memory words carry validity tags ({!Hw.Memory} tag
      store) and every installed SDW is a capability at rest: the
      permission mask a domain holds on a segment is derived from the
      SDW access field and, by construction, agrees with the bracket
      predicate — so the backend admits exactly the references the
      hardware admits, refusing in capability vocabulary.  Gate words
      become sealed entry capabilities, the crossing stack discipline
      becomes sealed return capabilities ([cap_stack]), and bracket
      nesting becomes monotonic attenuation.  See docs/CAPABILITIES.md.

    The per-access decision procedure behind each mode lives in
    {!Rings.Backend}; the two ablation switches exist only for the
    benches and tests that demonstrate why the corresponding rule is
    in the paper. *)

type mode = Ring_hardware | Ring_software_645 | Ring_capability

val backend_of_mode : mode -> Rings.Backend.t

type saved_state = {
  regs : Hw.Registers.t;  (** Deep copy; IPR at the faulting instruction. *)
  fault : Rings.Fault.t;
}

(** The simulated-supervisor trap path.  On any trap the processor
    stores the machine conditions ({!Hw.Conditions}) at
    [conditions_base] and transfers, in ring 0, to
    [vector_base + Fault.code] — a one-word-per-cause transfer vector.
    The privileged RTRAP instruction reloads the conditions from
    memory. *)
type trap_config = {
  vector_base : Hw.Addr.t;
  conditions_base : Hw.Addr.t;
}

(** A channel program started by SIOT, performed by the supervisor at
    completion time. *)
type io_request = {
  ccw : Hw.Addr.t;  (** The channel control word pair's address. *)
  buffer : Hw.Addr.t;  (** Transfer area (from CCW word 0). *)
  direction : [ `Read | `Write ];
  count : int;
}

type fetch_entry = {
  f_res : (Instr.t, Rings.Fault.t) result;
  f_gen : int;
  f_paged : bool;
}
(** A memoized instruction fetch: valid while [f_gen] matches the
    machine's current fetch generation.  [f_paged] selects which
    modeled walk a hit replays (unpaged, or through a page table).
    The prebuilt result makes a hit allocation-free. *)

type resolve_entry = {
  r_res : (Hw.Sdw.t * int, Rings.Fault.t) result;
  r_gen : int;
  r_paged : bool;
}
(** A memoized address translation, same generation discipline;
    faults are never cached. *)

type t = {
  mem : Hw.Memory.t;
  regs : Hw.Registers.t;
  counters : Trace.Counters.t;
  log : Trace.Event.log;
      (** Bounded ring-buffer event log; its clock is wired to
          [counters] so recorded events carry modeled-cycle stamps. *)
  spans : Trace.Span.tracker;
      (** Call/return span tracker — one span per CALL that transfers
          control, closed by its matching RETURN.  Disabled by
          default; enabling it never changes the modeled counters. *)
  profile : Trace.Profile.t;
      (** Per-ring / per-segment cycle and instruction attribution,
          filled by {!Cpu.step} when enabled. *)
  mode : mode;
  backend : Rings.Backend.t;
      (** [backend_of_mode mode], cached off the per-reference hot
          path. *)
  stack_rule : Rings.Stack_rule.t;
  gate_on_same_ring : bool;
      (** Ablation: when false, same-ring CALLs skip the gate check. *)
  use_r1_in_indirection : bool;
      (** Ablation: when false, effective-ring formation omits the
          SDW.R1 term for segments containing indirect words. *)
  mutable halted : bool;
  mutable saved : saved_state option;
      (** Processor state captured by the last trap, for RTRAP. *)
  mutable timer : int option;
      (** Interval timer: decremented once per retired instruction;
          reaching zero raises [Timer_runout] between instructions.
          [None] disables it. *)
  mutable io_countdown : int option;
      (** Pending I/O operation started by SIOC/SIOT: counts down per
          instruction like the timer and raises the I/O-completion
          trap when it reaches zero. *)
  mutable io_request : io_request option;
      (** The transfer the supervisor performs at completion (SIOT);
          [None] for a bare SIOC. *)
  mutable inhibit : bool;
      (** Interrupt inhibit: set by the hardware on every trap entry
          and cleared by RTRAP, so the timer and I/O completions
          cannot preempt a supervisor handler before it has consumed
          the machine conditions.  (Synchronous faults still trap —
          a buggy handler is not protected from itself.) *)
  mutable trap_config : trap_config option;
      (** When set, the processor itself completes the trap sequence:
          it stores the machine conditions, forces ring 0, and
          transfers to the vector — the "bare-metal" mode where a
          {e simulated} supervisor handles traps.  When unset (the
          default), faults surface to the host-level kernel. *)
  sdw_tags : (int, Hw.Sdw.t) Hashtbl.t;
      (** The {e modeled} SDW associative memory, keyed by packed
          (descriptor segment base, segment number): a hit costs
          nothing, a miss reads the two SDW words from the descriptor
          segment.  Keying by the DBR base means loading a different
          descriptor segment naturally misses — the 645 baseline pays
          the refill after every ring switch, as the paper's cost
          discussion notes.  The key population alone determines the
          cycle accounting; the value is the host's decoded SDW, with
          {!Hw.Sdw.absent} (physical equality) marking a tag whose
          decode was invalidated by a store into the descriptor
          segment and must be silently refetched. *)
  sdw_cache : (int, Hw.Sdw.t) Hw.Assoc.t;
      (** Host-side LRU cache of decoded SDWs, same packed key as
          [sdw_tags].  Kept coherent by the memory write observer and
          purged of stale bases on DBR reload; never affects modeled
          cycles. *)
  ptw_tlb : (int, int) Hw.Assoc.t;
      (** Host-side TLB over {!Hw.Descriptor.translate_paged}, keyed
          by packed (DBR base, segno, pageno); the value packs the
          watched page-table word address with the frame base. *)
  icache : (int, Instr.t) Hw.Assoc.t;
      (** Host-side decoded-instruction cache keyed by absolute
          address; any store to a cached address drops the entry, so
          self-modifying code refetches and redecodes. *)
  sdw_watch : (int, int) Hashtbl.t;
      (** Descriptor-word address -> packed SDW keys (multi-binding)
          for write-coherence of [sdw_cache] and [ptw_tlb]. *)
  ptw_watch : (int, int) Hashtbl.t;
      (** Page-table word address -> packed PTW keys (multi-binding)
          for write-coherence of [ptw_tlb]. *)
  fetch_slots : int array;
      (** Whole-fetch memo, direct-mapped: slot [key land mask] holds
          the packed (DBR base, ring, segno, wordno) key, [-1] when
          empty.  A generation-current entry replays the modeled
          activity of the uncached fetch (one free SDW fetch, one core
          read — plus the PTW retrieval for paged segments) and skips
          translation, validation, read and decode on the host. *)
  fetch_entries : fetch_entry array;
      (** The entry filled alongside each [fetch_slots] key. *)
  fetch_watch : (int, int) Hashtbl.t;
      (** Absolute instruction-word address -> fetch-cache keys
          (multi-binding), so stores over cached words — self-modifying
          code — drop exactly the affected entries. *)
  resolve_slots : int array;
      (** Memoized successful translations, direct-mapped like
          [fetch_slots], keyed by packed (DBR base, segno, wordno). *)
  resolve_entries : resolve_entry array;
      (** The entry filled alongside each [resolve_slots] key. *)
  mutable fetch_gen : int;
      (** Generation stamp for [fetch_cache]; advanced by descriptor
          writes, SDW invalidation and modeled tag-store flushes, each
          of which could change what a cached fetch froze. *)
  watched : Bytes.t;
      (** One byte per memory word: which host caches have state
          keyed off this absolute address (bit 1 SDW, 2 PTW, 4
          decoded-instruction, 8 fetch memo).  Makes the common
          unwatched store a single byte test in the write observer. *)
  mutable sdw_cache_base : int;
      (** DBR base the host caches were last synchronized against;
          [fetch_sdw] lazily detects DBR reloads through it. *)
  mutable resident_bases : int list;
      (** Descriptor-segment bases currently resident in the host
          caches — at most {!Rings.Ring.count}, one per ring of a 645
          process.  Flipping the DBR among resident bases (every 645
          ring crossing) costs nothing; reloading to a base outside
          the set purges entries cached under the old bases. *)
  mutable injector : Hw.Inject.t option;
      (** Deterministic fault injector, polled between instructions
          when attached.  [None] (the default) costs one option test
          per step and leaves every modeled quantity untouched. *)
  mutable degraded : bool;
      (** Host caches disabled after coherence damage; see
          {!degrade}. *)
  mutable io_fail_pending : bool;
      (** The next I/O completion must deliver {!Rings.Fault.Io_error}
          instead of performing the transfer (armed by an injected
          channel failure). *)
  mutable on_recovery : Rings.Fault.t -> unit;
      (** Called by the kernel after each injected-fault recovery
          decision (resume, retry or quarantine) with the fault it
          acted on.  The chaos harness hangs its invariant checker
          here; the default does nothing. *)
  mutable cycle_limit : int option;
      (** Arena billing ceiling on {!Trace.Counters.cycles}: checked
          between instructions, raising
          {!Rings.Fault.Quota_exhausted} (and clearing itself) once
          the running cycle total reaches the limit.  Slice policy,
          not machine state: the dispatcher arms it before a tenant's
          slice and disarms it after, so it is always [None] at
          checkpoint boundaries and is not serialized. *)
  mutable cap_stack : Cap.Capability.sealed_return list;
      (** Capability mode's crossing stack: each cross-domain CALL
          pushes the caller's continuation sealed under the caller's
          domain, and the matching RETURN unseals and pops it.  Pops
          are lenient — the outward-return trampoline executes an
          upward RETN with no matching hardware CALL, so a top entry
          sealed under a different domain is simply left in place.
          Always [[]] in the other two modes; serialized in
          snapshots. *)
}

val create :
  ?mode:mode ->
  ?stack_rule:Rings.Stack_rule.t ->
  ?gate_on_same_ring:bool ->
  ?use_r1_in_indirection:bool ->
  ?mem_size:int ->
  unit ->
  t
(** Defaults: hardware rings, [Segno_equals_ring], both ablation
    switches on (the paper's rules). *)

val ring : t -> Rings.Ring.t
(** Current ring of execution (IPR.RING). *)

val fetch_sdw : t -> segno:int -> (Hw.Sdw.t, Rings.Fault.t) result

val resolve : t -> Hw.Addr.t -> (Hw.Sdw.t * int, Rings.Fault.t) result

val fetch_decoded : t -> int -> (Instr.t, Rings.Fault.t) result
(** The instruction word at absolute address [abs], through the
    decoded-instruction cache.  Models exactly one memory read whether
    the decode was cached or not. *)

val fetch_instr : t -> (Instr.t, Rings.Fault.t) result
(** The full instruction fetch at the current IPR: resolve, validate
    the execute bracket, read and decode — memoized whole through the
    fetch cache.  Modeled activity is identical cached or not. *)

val disassemble_at : t -> segno:int -> wordno:int -> string option
(** Silently re-decode and render the instruction word at
    [segno|wordno] through the current DBR — no counters, charges,
    caches or observers are touched.  This is the event log's lazy
    text resolver ({!Trace.Event.set_text_resolver}, registered by
    {!create}): trace export resolves instruction text on demand
    instead of the CPU formatting it per retired instruction.  [None]
    if the address no longer resolves or the word no longer decodes. *)

(** {1 Mode-dependent validation}

    Each of these dispatches through {!Rings.Backend.t} for the
    machine's mode: the hardware applies the {!Rings.Policy} bracket
    rules, the 645 consults only the flags (the per-ring descriptor
    segment is what makes the flags ring-specific), and the capability
    backend runs the derived-capability check, which refuses exactly
    where the hardware refuses but in capability vocabulary. *)

val validate_fetch :
  t -> Hw.Sdw.t -> ring:Rings.Ring.t -> (unit, Rings.Fault.t) result

val validate_read :
  t ->
  Hw.Sdw.t ->
  effective:Rings.Effective_ring.t ->
  (unit, Rings.Fault.t) result

val validate_write :
  t ->
  Hw.Sdw.t ->
  effective:Rings.Effective_ring.t ->
  (unit, Rings.Fault.t) result

val validate_transfer :
  t ->
  Hw.Sdw.t ->
  exec:Rings.Ring.t ->
  effective:Rings.Effective_ring.t ->
  (unit, Rings.Fault.t) result
(** Ordinary (non-CALL/RETURN) transfer validation — what {!Exec}
    applies to TRA-family targets. *)

val invalidate_sdw : t -> segno:int -> unit
(** Drop any associative-memory entries for [segno] (under every
    descriptor segment) — the modeled tags, the host SDW cache, every
    TLB entry translated through the segment's SDWs, and the decoded
    instruction cache.  Supervisor code that rewrites an SDW — e.g.
    to change a segment's access fields at run time — must call this
    for the change to be "immediately effective" as the paper
    requires. *)

val take_fault : t -> at:Hw.Registers.ptr -> Rings.Fault.t -> unit
(** Trap bookkeeping: charge the trap-entry cost, bump the trap (and,
    when appropriate, access-violation) counters, record the event,
    and capture the processor state with IPR pointing at the
    instruction that faulted so RTRAP can resume it. *)

val restore_saved : t -> unit
(** The RTRAP action: restore the captured state and clear it.
    Raises [Invalid_argument] when no state is saved. *)

(** {1 Fault injection and degradation} *)

val attach_injector : t -> Hw.Inject.t -> unit

val degrade : t -> unit
(** Flush and disable every host-side performance cache (SDW LRU, PTW
    TLB, decoded-instruction cache, fetch and resolve memos) and
    continue uncached.  The modeled associative memory is untouched,
    so the cycle accounting of the run is unchanged — only the host
    pays.  Idempotent; bumps the [degraded] counter on the first
    call. *)

val quiesce : t -> unit
(** Checkpoint boundary: flush every host-side cache and memo, and
    demote every modeled SDW tag to the absent sentinel (tag {e keys}
    survive — the tag-store population drives modeled accounting).
    The live run quiesces at each checkpoint it writes and the restore
    path rebuilds the same state in a fresh machine, so a resumed run
    and the uninterrupted one continue from identical cold host state
    and export byte-identical counters.  Unlike {!degrade} the caches
    refill on subsequent references. *)

val poll_injection : t -> Rings.Fault.t option
(** Fire at most one due injection rule.  A returned fault is a parity
    error the CPU must deliver between instructions (corruption, if
    any, has already been applied through the coherence-preserving
    silent-write path); I/O events arm [io_fail_pending] or stretch
    the in-flight countdown and return [None]. *)
