let set_stack_base_pr m ~new_ring ~stack_segno =
  Hw.Registers.set_pr m.Machine.regs 0
    {
      Hw.Registers.ring = new_ring;
      addr = Hw.Addr.v ~segno:stack_segno ~wordno:0;
    }

(* Event construction is gated so the disabled path allocates
   nothing — CALL/RETURN are the crossing workloads' hot path. *)
let record_call m ~crossing ~from_ring ~to_ring (addr : Hw.Addr.t) =
  if Trace.Event.enabled m.Machine.log then
    Trace.Event.record_call m.Machine.log ~crossing
      ~from_ring:(Rings.Ring.to_int from_ring)
      ~to_ring:(Rings.Ring.to_int to_ring)
      ~segno:addr.Hw.Addr.segno ~wordno:addr.Hw.Addr.wordno;
  if Trace.Span.enabled m.Machine.spans then
    Trace.Span.open_span m.Machine.spans ~kind:crossing
      ~from_ring:(Rings.Ring.to_int from_ring)
      ~to_ring:(Rings.Ring.to_int to_ring)
      ~segno:addr.Hw.Addr.segno ~wordno:addr.Hw.Addr.wordno
      ~cycles:(Trace.Counters.cycles m.Machine.counters)

let record_return m ~crossing ~from_ring ~to_ring (addr : Hw.Addr.t) =
  if Trace.Event.enabled m.Machine.log then
    Trace.Event.record_return m.Machine.log ~crossing
      ~from_ring:(Rings.Ring.to_int from_ring)
      ~to_ring:(Rings.Ring.to_int to_ring)
      ~segno:addr.Hw.Addr.segno ~wordno:addr.Hw.Addr.wordno;
  if Trace.Span.enabled m.Machine.spans then
    (* A same-ring return undoes a same-ring call; an upward return
       undoes a downward call.  Closing by expected kind keeps the
       intermediate upward return of the outward-return mechanism from
       ending the enclosing outward span. *)
    let expected =
      match crossing with
      | Trace.Event.Same_ring -> Trace.Event.Same_ring
      | Trace.Event.Upward | Trace.Event.Downward -> Trace.Event.Downward
      (* Recovery spans are opened and closed by the kernel's fault
         path, never by a RETURN instruction. *)
      | Trace.Event.Recovery -> Trace.Event.Recovery
    in
    Trace.Span.close_span ~kind:expected m.Machine.spans
      ~cycles:(Trace.Counters.cycles m.Machine.counters)

let hardware_call m ~effective ~(addr : Hw.Addr.t) =
  let regs = m.Machine.regs in
  let ipr = regs.Hw.Registers.ipr in
  let exec = ipr.Hw.Registers.ring in
  match Machine.fetch_sdw m ~segno:addr.Hw.Addr.segno with
  | Error _ as e -> e
  | Ok sdw -> (
      let same_segment =
        addr.Hw.Addr.segno = ipr.Hw.Registers.addr.Hw.Addr.segno
      in
      match
        Rings.Call.validate ~gate_on_same_ring:m.Machine.gate_on_same_ring
          sdw.Hw.Sdw.access ~exec ~effective ~segno:addr.Hw.Addr.segno
          ~wordno:addr.Hw.Addr.wordno ~same_segment
      with
      | Error (Rings.Fault.Upward_call _ as f) ->
          Trace.Counters.bump_calls_upward m.Machine.counters;
          Error f
      | Error _ as e -> e
      | Ok { Rings.Call.new_ring; crossing; via_gate = _ } -> (
          match Hw.Descriptor.translate sdw ~segno:addr.Hw.Addr.segno
                  ~wordno:addr.Hw.Addr.wordno
          with
          | Error _ as e -> e
          | Ok _abs ->
              let ring_changed = not (Rings.Ring.equal new_ring exec) in
              let stack_segno =
                Rings.Stack_rule.stack_segno m.Machine.stack_rule
                  ~dbr_stack_base:
                    regs.Hw.Registers.dbr.Hw.Registers.stack_base
                  ~current_stack_segno:
                    (Hw.Registers.get_pr regs Hw.Registers.pr_stack)
                      .Hw.Registers.addr
                      .Hw.Addr.segno
                  ~ring_changed ~new_ring
              in
              set_stack_base_pr m ~new_ring ~stack_segno;
              (match crossing with
              | Rings.Call.Same_ring ->
                  Trace.Counters.bump_calls_same_ring m.Machine.counters;
                  record_call m ~crossing:Trace.Event.Same_ring
                    ~from_ring:exec ~to_ring:new_ring addr
              | Rings.Call.Downward ->
                  Trace.Counters.bump_calls_downward m.Machine.counters;
                  record_call m ~crossing:Trace.Event.Downward
                    ~from_ring:exec ~to_ring:new_ring addr);
              regs.Hw.Registers.ipr <- { Hw.Registers.ring = new_ring; addr };
              Ok ()))

let hardware_retn m ~effective ~(addr : Hw.Addr.t) =
  let regs = m.Machine.regs in
  let exec = regs.Hw.Registers.ipr.Hw.Registers.ring in
  match Machine.fetch_sdw m ~segno:addr.Hw.Addr.segno with
  | Error _ as e -> e
  | Ok sdw -> (
      match Rings.Return_op.validate sdw.Hw.Sdw.access ~exec ~effective with
      | Error _ as e -> e
      | Ok { Rings.Return_op.new_ring; crossing; maximize_pr_rings } -> (
          match Hw.Descriptor.translate sdw ~segno:addr.Hw.Addr.segno
                  ~wordno:addr.Hw.Addr.wordno
          with
          | Error _ as e -> e
          | Ok _abs ->
              if maximize_pr_rings then
                Hw.Registers.maximize_pr_rings regs new_ring;
              (match crossing with
              | Rings.Return_op.Same_ring ->
                  Trace.Counters.bump_returns_same_ring m.Machine.counters;
                  record_return m ~crossing:Trace.Event.Same_ring
                    ~from_ring:exec ~to_ring:new_ring addr
              | Rings.Return_op.Upward ->
                  Trace.Counters.bump_returns_upward m.Machine.counters;
                  record_return m ~crossing:Trace.Event.Upward
                    ~from_ring:exec ~to_ring:new_ring addr);
              regs.Hw.Registers.ipr <- { Hw.Registers.ring = new_ring; addr };
              Ok ()))

(* Capability mode: the same domain switch the hardware performs —
   identical admit/refuse decisions, ring changes, stack discipline,
   counters and spans — but the crossing mechanism is sealed-
   capability transfer.  A downward CALL unseals the target's entry
   capability (the gate word reread as a sealed entry) and seals the
   caller's continuation under the caller's domain, pushing it on the
   machine's capability stack; the matching upward RETURN unseals it.
   The seal/unseal work is charged explicitly ([Hw.Costs.cap_seal],
   [cap_unseal]) — a handful of cycles against the 645's trap round
   trip, which is the headline of the backends bench.  Refusals are
   the hardware's, renamed into capability vocabulary by
   {!Rings.Backend.cap_fault_of}; the upward-call fault passes
   through verbatim so the kernel's outward-call emulation engages
   unchanged. *)
let capability_call m ~effective ~(addr : Hw.Addr.t) =
  let regs = m.Machine.regs in
  let ipr = regs.Hw.Registers.ipr in
  let exec = ipr.Hw.Registers.ring in
  match Machine.fetch_sdw m ~segno:addr.Hw.Addr.segno with
  | Error _ as e -> e
  | Ok sdw -> (
      let same_segment =
        addr.Hw.Addr.segno = ipr.Hw.Registers.addr.Hw.Addr.segno
      in
      match
        Rings.Call.validate ~gate_on_same_ring:m.Machine.gate_on_same_ring
          sdw.Hw.Sdw.access ~exec ~effective ~segno:addr.Hw.Addr.segno
          ~wordno:addr.Hw.Addr.wordno ~same_segment
      with
      | Error (Rings.Fault.Upward_call _ as f) ->
          Trace.Counters.bump_calls_upward m.Machine.counters;
          Error f
      | Error f -> Error (Rings.Backend.cap_fault_of f)
      | Ok { Rings.Call.new_ring; crossing; via_gate = _ } -> (
          match Hw.Descriptor.translate sdw ~segno:addr.Hw.Addr.segno
                  ~wordno:addr.Hw.Addr.wordno
          with
          | Error _ as e -> e
          | Ok _abs ->
              let ring_changed = not (Rings.Ring.equal new_ring exec) in
              let stack_segno =
                Rings.Stack_rule.stack_segno m.Machine.stack_rule
                  ~dbr_stack_base:
                    regs.Hw.Registers.dbr.Hw.Registers.stack_base
                  ~current_stack_segno:
                    (Hw.Registers.get_pr regs Hw.Registers.pr_stack)
                      .Hw.Registers.addr
                      .Hw.Addr.segno
                  ~ring_changed ~new_ring
              in
              set_stack_base_pr m ~new_ring ~stack_segno;
              (match crossing with
              | Rings.Call.Same_ring ->
                  Trace.Counters.bump_calls_same_ring m.Machine.counters;
                  record_call m ~crossing:Trace.Event.Same_ring
                    ~from_ring:exec ~to_ring:new_ring addr
              | Rings.Call.Downward ->
                  (* Unseal the entry, seal the continuation.  IPR is
                     already advanced: it holds the return point. *)
                  Trace.Counters.charge m.Machine.counters
                    (Hw.Costs.cap_unseal + Hw.Costs.cap_seal);
                  m.Machine.cap_stack <-
                    Cap.Capability.seal_return
                      ~otype:(Rings.Ring.to_int exec)
                      ~segno:ipr.Hw.Registers.addr.Hw.Addr.segno
                      ~wordno:ipr.Hw.Registers.addr.Hw.Addr.wordno
                    :: m.Machine.cap_stack;
                  Trace.Counters.bump_calls_downward m.Machine.counters;
                  record_call m ~crossing:Trace.Event.Downward
                    ~from_ring:exec ~to_ring:new_ring addr);
              regs.Hw.Registers.ipr <- { Hw.Registers.ring = new_ring; addr };
              Ok ()))

let capability_retn m ~effective ~(addr : Hw.Addr.t) =
  let regs = m.Machine.regs in
  let exec = regs.Hw.Registers.ipr.Hw.Registers.ring in
  match Machine.fetch_sdw m ~segno:addr.Hw.Addr.segno with
  | Error _ as e -> e
  | Ok sdw -> (
      match Rings.Return_op.validate sdw.Hw.Sdw.access ~exec ~effective with
      | Error f -> Error (Rings.Backend.cap_fault_of f)
      | Ok { Rings.Return_op.new_ring; crossing; maximize_pr_rings } -> (
          match Hw.Descriptor.translate sdw ~segno:addr.Hw.Addr.segno
                  ~wordno:addr.Hw.Addr.wordno
          with
          | Error _ as e -> e
          | Ok _abs ->
              if maximize_pr_rings then
                Hw.Registers.maximize_pr_rings regs new_ring;
              (match crossing with
              | Rings.Return_op.Same_ring ->
                  Trace.Counters.bump_returns_same_ring m.Machine.counters;
                  record_return m ~crossing:Trace.Event.Same_ring
                    ~from_ring:exec ~to_ring:new_ring addr
              | Rings.Return_op.Upward ->
                  (* Unseal the sealed return.  The pop is lenient:
                     the outward-return trampoline performs an upward
                     RETN with no matching hardware CALL, so a top
                     entry sealed under a different domain stays. *)
                  Trace.Counters.charge m.Machine.counters
                    Hw.Costs.cap_unseal;
                  (match m.Machine.cap_stack with
                  | sr :: rest
                    when Cap.Capability.unseal_return sr
                           ~otype:(Rings.Ring.to_int new_ring)
                         <> None ->
                      m.Machine.cap_stack <- rest
                  | _ -> ());
                  Trace.Counters.bump_returns_upward m.Machine.counters;
                  record_return m ~crossing:Trace.Event.Upward
                    ~from_ring:exec ~to_ring:new_ring addr);
              regs.Hw.Registers.ipr <- { Hw.Registers.ring = new_ring; addr };
              Ok ()))

(* 645 mode: CALL/RETURN are plain transfers; a target that is not
   executable under the current descriptor segment faults to the
   software gatekeeper, which implements the ring switch. *)
let software_transfer m ~is_call ~(addr : Hw.Addr.t) =
  let regs = m.Machine.regs in
  let ring = regs.Hw.Registers.ipr.Hw.Registers.ring in
  match Machine.resolve m addr with
  | Error (Rings.Fault.Missing_segment _) | Error (Rings.Fault.Bound_violation _)
    ->
      (* In the 645 baseline a call out of the virtual memory visible
         to this ring is indistinguishable from a gate reference: the
         gatekeeper sorts it out. *)
      Error
        (Rings.Fault.Cross_ring_transfer
           { segno = addr.Hw.Addr.segno; wordno = addr.Hw.Addr.wordno })
  | Error _ as e -> e
  | Ok (sdw, _abs) -> (
      match Machine.validate_fetch m sdw ~ring with
      | Error _ ->
          Error
            (Rings.Fault.Cross_ring_transfer
               { segno = addr.Hw.Addr.segno; wordno = addr.Hw.Addr.wordno })
      | Ok () ->
          if is_call then begin
            Trace.Counters.bump_calls_same_ring m.Machine.counters;
            let stack_segno =
              (Hw.Registers.get_pr regs Hw.Registers.pr_stack)
                .Hw.Registers.addr
                .Hw.Addr.segno
            in
            set_stack_base_pr m ~new_ring:ring ~stack_segno;
            record_call m ~crossing:Trace.Event.Same_ring ~from_ring:ring
              ~to_ring:ring addr
          end
          else begin
            Trace.Counters.bump_returns_same_ring m.Machine.counters;
            record_return m ~crossing:Trace.Event.Same_ring ~from_ring:ring
              ~to_ring:ring addr
          end;
          regs.Hw.Registers.ipr <- { Hw.Registers.ring = ring; addr };
          Ok ())

let call m ~effective ~addr =
  match m.Machine.mode with
  | Machine.Ring_hardware -> hardware_call m ~effective ~addr
  | Machine.Ring_software_645 -> software_transfer m ~is_call:true ~addr
  | Machine.Ring_capability -> capability_call m ~effective ~addr

let retn m ~effective ~addr =
  match m.Machine.mode with
  | Machine.Ring_hardware -> hardware_retn m ~effective ~addr
  | Machine.Ring_software_645 -> software_transfer m ~is_call:false ~addr
  | Machine.Ring_capability -> capability_retn m ~effective ~addr
