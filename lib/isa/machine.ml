type mode = Ring_hardware | Ring_software_645 | Ring_capability

(* Which per-access decision procedure a mode runs.  The machine keeps
   [mode] (the capability backend also changes CALL/RETURN mechanics
   and enables the tag store); the backend is what the per-reference
   validations dispatch on. *)
let backend_of_mode = function
  | Ring_hardware -> Rings.Backend.Hardware
  | Ring_software_645 -> Rings.Backend.Software_645
  | Ring_capability -> Rings.Backend.Capability

type saved_state = { regs : Hw.Registers.t; fault : Rings.Fault.t }

type trap_config = {
  vector_base : Hw.Addr.t;
  conditions_base : Hw.Addr.t;
}

type io_request = {
  ccw : Hw.Addr.t;
  buffer : Hw.Addr.t;
  direction : [ `Read | `Write ];
  count : int;
}

(* Associative-memory keys are packed into a single immediate int so
   the hot path never allocates a tuple or runs the polymorphic hash
   over one.

   SDW entries are identified by (descriptor segment base, segno):
   base is at most 21 bits, segno at most {!Hw.Addr.segno_bits}.

   PTW entries are identified by (descriptor segment base, segno,
   pageno): wordno is under 2^18 and pages are 1024 words, so pageno
   fits 8 bits, and the whole key fits 43 bits.  Including the base
   keeps entries from a 645-style per-ring descriptor segment alive
   across the DBR flips of every ring crossing, exactly like the
   modeled associative memory.

   A PTW value packs (page-table word address, frame base), both under
   22 bits, so a TLB hit allocates nothing and eviction can still find
   the watch entry. *)
let segno_mask = (1 lsl Hw.Addr.segno_bits) - 1
let sdw_key ~base ~segno = (base lsl Hw.Addr.segno_bits) lor segno
let pageno_bits = 8
let ptw_key ~base ~segno ~pageno =
  (base lsl (Hw.Addr.segno_bits + pageno_bits))
  lor (segno lsl pageno_bits)
  lor pageno

let ptw_value ~waddr ~frame_base = (waddr lsl 22) lor frame_base
let ptw_value_frame v = v land ((1 lsl 22) - 1)

(* A fetch-cache key identifies everything a cached instruction fetch
   was computed from that can vary per fetch: descriptor segment base,
   segment, ring of execution and word number — 21+14+3+18 = 56
   bits. *)
let fetch_key ~base ~ring ~segno ~wordno =
  (((base lsl Hw.Addr.segno_bits) lor segno) lsl 21)
  lor (ring lsl 18) lor wordno

(* An instruction cached with the generation current at fill time;
   stale generations (descriptor writes, page-table writes,
   invalidations, modeled-cache flushes) make every older entry miss
   without a scan.  [f_paged] records which modeled walk to replay.
   The prebuilt result is stored so a hit allocates nothing. *)
type fetch_entry = {
  f_res : (Instr.t, Rings.Fault.t) result;
  f_gen : int;
  f_paged : bool;
}

(* Same idea for whole address translations: a generation-current hit
   returns the prebuilt [Ok (sdw, abs)] and replays the modeled
   activity of the walk that filled it.  Keyed by packed (DBR base,
   segno, wordno) — faults are never cached. *)
type resolve_entry = {
  r_res : (Hw.Sdw.t * int, Rings.Fault.t) result;
  r_gen : int;
  r_paged : bool;
}

let resolve_key ~base ~segno ~wordno =
  (((base lsl Hw.Addr.segno_bits) lor segno) lsl 18) lor wordno

(* Both memo tables are direct-mapped: a power-of-two slot array
   indexed by the low key bits, the full key stored alongside for the
   match check.  One masked array probe per lookup — no hashing — and
   a colliding fill simply overwrites.  Slot [-1] is empty (keys are
   non-negative), and the dummy entries carry a never-current
   generation so an uninitialized slot can never hit. *)
let fetch_cache_slots = 8192
let resolve_cache_slots = 8192

(* Fibonacci hashing for the slot index: the packed keys carry the
   wordno in their low bits, so masking those alone would collide
   caller and callee code at equal word numbers in different segments.
   One multiply spreads base, segno and ring into the top bits. *)
let slot_index key = (key * 0x2545F4914F6CDD1D) lsr 50

let fetch_index key = slot_index key
let resolve_index key = slot_index key

let dummy_fetch_entry =
  {
    f_res = Error Rings.Fault.No_execute_permission;
    f_gen = min_int;
    f_paged = false;
  }

let dummy_resolve_entry =
  {
    r_res = Error Rings.Fault.No_read_permission;
    r_gen = min_int;
    r_paged = false;
  }

(* Which host caches watch an absolute address, one byte per memory
   word, so the write observer is a single byte test on the (vastly
   common) unwatched store. *)
let bit_sdw = 1
let bit_ptw = 2
let bit_icache = 4
let bit_fetch = 8

type t = {
  mem : Hw.Memory.t;
  regs : Hw.Registers.t;
  counters : Trace.Counters.t;
  log : Trace.Event.log;
  spans : Trace.Span.tracker;
  profile : Trace.Profile.t;
  mode : mode;
  backend : Rings.Backend.t;
      (* [backend_of_mode mode], cached: the validate_* calls sit on
         the per-reference hot path and must not re-match the mode. *)
  stack_rule : Rings.Stack_rule.t;
  gate_on_same_ring : bool;
  use_r1_in_indirection : bool;
  mutable halted : bool;
  mutable saved : saved_state option;
  mutable timer : int option;
  mutable io_countdown : int option;
  mutable io_request : io_request option;
  mutable inhibit : bool;
  mutable trap_config : trap_config option;
  sdw_tags : (int, Hw.Sdw.t) Hashtbl.t;
  sdw_cache : (int, Hw.Sdw.t) Hw.Assoc.t;
  ptw_tlb : (int, int) Hw.Assoc.t;
  icache : (int, Instr.t) Hw.Assoc.t;
  sdw_watch : (int, int) Hashtbl.t;
  ptw_watch : (int, int) Hashtbl.t;
  fetch_slots : int array;
  fetch_entries : fetch_entry array;
  fetch_watch : (int, int) Hashtbl.t;
  resolve_slots : int array;
  resolve_entries : resolve_entry array;
  mutable fetch_gen : int;
  watched : Bytes.t;
  mutable sdw_cache_base : int;
  mutable resident_bases : int list;
  mutable injector : Hw.Inject.t option;
  mutable degraded : bool;
  mutable io_fail_pending : bool;
  mutable on_recovery : Rings.Fault.t -> unit;
  mutable cycle_limit : int option;
  mutable cap_stack : Cap.Capability.sealed_return list;
}

let cache_capacity = 64
let sdw_cache_entries = 512
let ptw_tlb_entries = 256
let icache_entries = 4096

(* Watch tables use Hashtbl.add multi-bindings: distinct descriptor
   segments can interleave in absolute memory, and per-ring descriptor
   segments of a 645-style process share page tables, so one written
   word can back several cached entries. *)
let watch t ~bit table addr key =
  if not (List.mem key (Hashtbl.find_all table addr)) then
    Hashtbl.add table addr key;
  Bytes.unsafe_set t.watched addr
    (Char.unsafe_chr (Char.code (Bytes.unsafe_get t.watched addr) lor bit))

let unwatch_all table addr =
  while Hashtbl.mem table addr do
    Hashtbl.remove table addr
  done

let drop_ptw_where t pred =
  ignore
    (Hw.Assoc.drop_where t.ptw_tlb (fun key v ->
         if pred key then begin
           unwatch_all t.ptw_watch (v lsr 22);
           true
         end
         else false))

(* Memory-write coherence, slow half: the written word is (or once
   was) backing host-cached state.  An overwritten SDW invalidates its
   cached decode, every TLB entry translated through it, and — via the
   generation counter — every cached instruction fetch, since those
   froze its translation and access check.  An overwritten PTW
   invalidates its TLB entries.  Any store invalidates decoded
   instructions at that absolute address, so self-modifying code
   refetches.  The modeled tag store's population is deliberately
   untouched: the modeled hardware requires an explicit
   [invalidate_sdw], and its hit/miss pattern (hence the cycle
   accounting) must not depend on host cache residency. *)
let on_watched_write t addr b =
  if b land bit_sdw <> 0 then begin
    List.iter
      (fun key ->
        (* The modeled tag must survive, but its host-side decode is
           now stale: mark it with the [absent] sentinel so the next
           hit refetches silently. *)
        if Hashtbl.mem t.sdw_tags key then
          Hashtbl.replace t.sdw_tags key Hw.Sdw.absent;
        ignore (Hw.Assoc.remove t.sdw_cache key);
        drop_ptw_where t (fun k -> k lsr pageno_bits = key))
      (Hashtbl.find_all t.sdw_watch addr);
    unwatch_all t.sdw_watch addr;
    t.fetch_gen <- t.fetch_gen + 1
  end;
  if b land bit_ptw <> 0 then begin
    List.iter
      (fun key -> ignore (Hw.Assoc.remove t.ptw_tlb key))
      (Hashtbl.find_all t.ptw_watch addr);
    unwatch_all t.ptw_watch addr;
    (* Cached fetches from paged segments froze a translation through
       some PTW; a rewritten page table must fault or retranslate. *)
    t.fetch_gen <- t.fetch_gen + 1
  end;
  if b land bit_icache <> 0 then ignore (Hw.Assoc.remove t.icache addr);
  if b land bit_fetch <> 0 then begin
    List.iter
      (fun key ->
        let i = fetch_index key in
        if Array.unsafe_get t.fetch_slots i = key then
          Array.unsafe_set t.fetch_slots i (-1))
      (Hashtbl.find_all t.fetch_watch addr);
    unwatch_all t.fetch_watch addr
  end;
  Bytes.unsafe_set t.watched addr '\000'

(* Fast half: one byte test per store. *)
let on_memory_write t addr =
  let b = Char.code (Bytes.unsafe_get t.watched addr) in
  if b <> 0 then on_watched_write t addr b

(* Silent disassembly for lazy trace-text resolution: re-decode the
   word at [segno|wordno] through the current DBR without touching
   counters, charges, caches or the write observer — export must not
   perturb the modeled machine.  Resolution happens at export time, so
   the walk sees the descriptor state of that moment; an address that
   no longer resolves (revoked segment, paged-out page, word that no
   longer decodes) is [None], which the event log renders as ["?"]. *)
let disassemble_at t ~segno ~wordno =
  match Hw.Descriptor.fetch_sdw_silent t.mem t.regs.Hw.Registers.dbr ~segno with
  | Error _ -> None
  | Ok sdw -> (
      let abs =
        if not (Hw.Sdw.contains sdw ~wordno) then None
        else if sdw.Hw.Sdw.paged then begin
          let pageno = Hw.Paging.page_of_wordno wordno in
          let waddr = sdw.Hw.Sdw.base + pageno in
          let ptw = Hw.Paging.decode_ptw (Hw.Memory.read_silent t.mem waddr) in
          if ptw.Hw.Paging.present then
            Some (ptw.Hw.Paging.frame_base + Hw.Paging.offset_in_page wordno)
          else None
        end
        else
          match Hw.Descriptor.translate sdw ~segno ~wordno with
          | Ok abs -> Some abs
          | Error _ -> None
      in
      match abs with
      | None -> None
      | Some abs -> (
          match Instr.decode (Hw.Memory.read_silent t.mem abs) with
          | Ok instr -> Some (Format.asprintf "%a" Instr.pp instr)
          | Error _ -> None))

let create ?(mode = Ring_hardware)
    ?(stack_rule = Rings.Stack_rule.Segno_equals_ring)
    ?(gate_on_same_ring = true) ?(use_r1_in_indirection = true) ?mem_size ()
    =
  let counters = Trace.Counters.create () in
  let mem = Hw.Memory.create ?size:mem_size counters in
  let log = Trace.Event.create_log () in
  (* Events are stamped with the modeled cycle count at record time. *)
  Trace.Event.set_clock log (fun () -> Trace.Counters.cycles counters);
  let t =
    {
      mem;
      regs = Hw.Registers.create ();
      counters;
      log;
      spans = Trace.Span.create ();
      profile = Trace.Profile.create ~rings:Rings.Ring.count ();
      mode;
      backend = backend_of_mode mode;
      stack_rule;
      gate_on_same_ring;
      use_r1_in_indirection;
      halted = false;
      saved = None;
      timer = None;
      io_countdown = None;
      io_request = None;
      inhibit = false;
      trap_config = None;
      sdw_tags = Hashtbl.create cache_capacity;
      sdw_cache = Hw.Assoc.create ~capacity:sdw_cache_entries ();
      ptw_tlb = Hw.Assoc.create ~capacity:ptw_tlb_entries ();
      icache = Hw.Assoc.create ~capacity:icache_entries ();
      sdw_watch = Hashtbl.create 64;
      ptw_watch = Hashtbl.create 64;
      fetch_slots = Array.make fetch_cache_slots (-1);
      fetch_entries = Array.make fetch_cache_slots dummy_fetch_entry;
      fetch_watch = Hashtbl.create 256;
      resolve_slots = Array.make resolve_cache_slots (-1);
      resolve_entries = Array.make resolve_cache_slots dummy_resolve_entry;
      fetch_gen = 0;
      watched = Bytes.make (Hw.Memory.size mem) '\000';
      sdw_cache_base = -1;
      resident_bases = [];
      injector = None;
      degraded = false;
      io_fail_pending = false;
      on_recovery = (fun _ -> ());
      cycle_limit = None;
      cap_stack = [];
    }
  in
  (* The capability machine carries validity tags on memory words;
     allocating the tag store only here keeps the other two backends'
     write path untouched. *)
  if mode = Ring_capability then Hw.Memory.enable_tags mem;
  Trace.Span.set_backend t.spans
    (Rings.Backend.to_string (backend_of_mode mode));
  Hw.Memory.set_write_observer t.mem (on_memory_write t);
  (* Instruction events defer their disassembly to export time; the
     log resolves it by silently re-decoding the segment image.  Both
     trace sinks mirror their discard statistics into the machine's
     counters so drops and sampling ride the ordinary counter surface. *)
  Trace.Event.set_text_resolver t.log (fun ~segno ~wordno ->
      disassemble_at t ~segno ~wordno);
  Trace.Event.set_stats t.log counters;
  Trace.Span.set_stats t.spans counters;
  t

let ring t = t.regs.Hw.Registers.ipr.Hw.Registers.ring

(* The modeled associative memory: same replacement behaviour as the
   original simulated hardware — [cache_capacity] entries, flushed
   wholesale when full — so the cycle accounting is reproduced
   bit-for-bit.  Each tag carries the host's decoded SDW so the common
   case (modeled hit, coherent value) is a single int-keyed lookup;
   {!Hw.Sdw.absent} never enters through an insert (only present SDWs
   are cached), so it doubles as the "host value stale" sentinel. *)
let tag_insert t key sdw =
  if Hashtbl.length t.sdw_tags >= cache_capacity then begin
    Hashtbl.clear t.sdw_tags;
    (* Cached fetches replay a modeled tag hit; a flushed tag store
       makes every one of them a modeled miss again. *)
    t.fetch_gen <- t.fetch_gen + 1
  end;
  Hashtbl.replace t.sdw_tags key sdw

let host_insert_sdw t ~base ~segno key sdw =
  if not t.degraded then
    (match Hw.Assoc.insert t.sdw_cache key sdw with
    | None -> ()
    | Some _ -> Trace.Counters.bump_sdw_cache_evictions t.counters);
  (* The watches stay armed even degraded: the modeled tag store keeps
     carrying host decodes, and those must still heal on descriptor
     writes. *)
  let a = base + (Hw.Descriptor.words_per_sdw * segno) in
  watch t ~bit:bit_sdw t.sdw_watch a key;
  watch t ~bit:bit_sdw t.sdw_watch (a + 1) key

(* A reloaded DBR names a different descriptor segment.  A 645
   process keeps one descriptor segment per ring (at most
   {!Rings.Ring.count}), and switching rings flips the DBR between
   them on every crossing, so bases inside that working set stay
   resident — write-coherence is the observer's job, not the purge's.
   A reload to a base {e outside} the working set is a process switch
   (or a genuinely new descriptor segment): entries cached under the
   old bases are dropped rather than left to squat until capacity
   eviction.  Lazy detection — the DBR is written directly by LDBR,
   the kernel and the 645 descriptor-segment switch, so [fetch_sdw]
   notices the base change on the next translation. *)
let sync_dbr_base t base =
  if not (List.memq base t.resident_bases) then begin
    if List.length t.resident_bases >= Rings.Ring.count then begin
      ignore
        (Hw.Assoc.drop_where t.sdw_cache (fun key _ ->
             key lsr Hw.Addr.segno_bits <> base));
      t.resident_bases <- [ base ]
    end
    else t.resident_bases <- base :: t.resident_bases
  end;
  t.sdw_cache_base <- base

(* Capability backend only: an SDW read from core is trusted only if
   both of its words still carry validity tags.  [store_sdw] — the
   kernel's descriptor-install path — mints the tags; any other store
   (including injected corruption, which writes through the
   coherence-preserving silent path) clears them, so a forged or
   damaged descriptor refuses with {!Rings.Fault.Cap_tag_violation}
   instead of being decoded and obeyed.  Runs only after a successful
   walk, so [segno] is within the DBR bound and the addresses are in
   range.  Modeled-hit paths skip the check by design: a store over
   the words always demotes the modeled tag first (the write
   observer), forcing the checked refill. *)
let check_sdw_tags t (dbr : Hw.Registers.dbr) ~segno =
  if t.mode <> Ring_capability then Ok ()
  else begin
    let a0 = dbr.Hw.Registers.base + (Hw.Descriptor.words_per_sdw * segno) in
    if not (Hw.Memory.tagged t.mem a0) then
      Error (Rings.Fault.Cap_tag_violation { addr = a0; segno })
    else if not (Hw.Memory.tagged t.mem (a0 + 1)) then
      Error (Rings.Fault.Cap_tag_violation { addr = a0 + 1; segno })
    else Ok ()
  end

(* Modeled hit whose host-side decode was invalidated by a write:
   refetch silently and heal the tag.  The modeled activity is the hit
   already bumped by the caller — nothing further is charged. *)
let refill_tag t dbr ~base ~segno key =
  Trace.Counters.bump_sdw_cache_misses t.counters;
  match Hw.Descriptor.fetch_sdw_silent t.mem dbr ~segno with
  | Error _ as e -> e
  | Ok sdw -> (
      match check_sdw_tags t dbr ~segno with
      | Error _ as e -> e
      | Ok () ->
          Hashtbl.replace t.sdw_tags key sdw;
          host_insert_sdw t ~base ~segno key sdw;
          Ok sdw)

(* Modeled miss: the two SDW words are read from core — charged as
   memory traffic exactly as before the host cache split.  The host
   LRU spares the walk when it can. *)
let fetch_sdw_miss t dbr ~base ~segno key =
  match (if t.degraded then None else Hw.Assoc.find t.sdw_cache key) with
  | Some sdw when segno < dbr.Hw.Registers.bound ->
      (* Replays the uncached walk's accounting exactly: the SDW-fetch
         bump and charge, then the two SDW words from core.  (The
         bound guard mirrors the walk's own check — a shrunk DBR bound
         must still fault.) *)
      Trace.Counters.bump_sdw_cache_hits t.counters;
      Trace.Counters.bump_sdw_fetches t.counters;
      Trace.Counters.charge t.counters Hw.Costs.sdw_fetch;
      Trace.Counters.charge t.counters (2 * Hw.Costs.memory_access);
      tag_insert t key sdw;
      (* Refreshes recency and re-arms the descriptor-word watches the
         observer may have dropped while only the LRU entry lived. *)
      host_insert_sdw t ~base ~segno key sdw;
      Ok sdw
  | Some _ | None -> (
      Trace.Counters.bump_sdw_cache_misses t.counters;
      match Hw.Descriptor.fetch_sdw t.mem dbr ~segno with
      | Error _ as e -> e
      | Ok sdw -> (
          Trace.Counters.charge t.counters (2 * Hw.Costs.memory_access);
          match check_sdw_tags t dbr ~segno with
          | Error _ as e -> e
          | Ok () ->
              tag_insert t key sdw;
              host_insert_sdw t ~base ~segno key sdw;
              Ok sdw))

let fetch_sdw t ~segno =
  let dbr = t.regs.Hw.Registers.dbr in
  let base = dbr.Hw.Registers.base in
  if base <> t.sdw_cache_base then sync_dbr_base t base;
  let key = sdw_key ~base ~segno in
  match Hashtbl.find t.sdw_tags key with
  | sdw when sdw != Hw.Sdw.absent ->
      (* Modeled hit with a coherent host decode — the hot path. *)
      Trace.Counters.bump_sdw_fetches t.counters;
      Trace.Counters.bump_sdw_cache_hits t.counters;
      Ok sdw
  | _ ->
      Trace.Counters.bump_sdw_fetches t.counters;
      refill_tag t dbr ~base ~segno key
  | exception Not_found -> fetch_sdw_miss t dbr ~base ~segno key

let invalidate_sdw t ~segno =
  let stale =
    Hashtbl.fold
      (fun key _ acc -> if key land segno_mask = segno then key :: acc else acc)
      t.sdw_tags []
  in
  List.iter (Hashtbl.remove t.sdw_tags) stale;
  ignore
    (Hw.Assoc.drop_where t.sdw_cache (fun key _ ->
         key land segno_mask = segno));
  drop_ptw_where t (fun key ->
      (key lsr pageno_bits) land segno_mask = segno);
  (* Conservatively drop decoded instructions too: revoking a segment
     must leave nothing derived from it behind. *)
  Hw.Assoc.clear t.icache;
  Array.fill t.fetch_slots 0 fetch_cache_slots (-1);
  Hashtbl.reset t.fetch_watch;
  Array.fill t.resolve_slots 0 resolve_cache_slots (-1);
  t.fetch_gen <- t.fetch_gen + 1

(* Paged translation with a host-side TLB.  The modeled activity is
   identical on hit and miss — one PTW retrieval counted and charged
   as a memory access, exactly {!Hw.Descriptor.translate_paged} — the
   TLB only spares the host the read-decode on a hit.  Not-present
   PTWs are never cached, so a missing page faults afresh each time,
   as the uncached walk does. *)
let translate_paged_cached t (sdw : Hw.Sdw.t) ~segno ~wordno =
  if not (Hw.Sdw.contains sdw ~wordno) then
    Error (Rings.Fault.Bound_violation { segno; wordno; bound = sdw.Hw.Sdw.bound })
  else begin
    let pageno = Hw.Paging.page_of_wordno wordno in
    Trace.Counters.bump_ptw_fetches t.counters;
    Trace.Counters.bump_memory_reads t.counters;
    Trace.Counters.charge t.counters Hw.Costs.memory_access;
    let key =
      ptw_key ~base:t.regs.Hw.Registers.dbr.Hw.Registers.base ~segno ~pageno
    in
    match (if t.degraded then None else Hw.Assoc.find t.ptw_tlb key) with
    | Some v ->
        Trace.Counters.bump_ptw_tlb_hits t.counters;
        Ok (ptw_value_frame v + Hw.Paging.offset_in_page wordno)
    | None ->
        Trace.Counters.bump_ptw_tlb_misses t.counters;
        let waddr = sdw.Hw.Sdw.base + pageno in
        let ptw = Hw.Paging.decode_ptw (Hw.Memory.read_silent t.mem waddr) in
        if ptw.Hw.Paging.present then begin
          let frame = ptw.Hw.Paging.frame_base in
          if not t.degraded then begin
            (match
               Hw.Assoc.insert t.ptw_tlb key (ptw_value ~waddr ~frame_base:frame)
             with
            | None -> ()
            | Some _ ->
                (* The evicted entry's page-table word stays watched:
                   cached fetches may still depend on it, and a stale
                   watch costs one harmless observer firing. *)
                Trace.Counters.bump_ptw_tlb_evictions t.counters);
            watch t ~bit:bit_ptw t.ptw_watch waddr key
          end;
          Ok (frame + Hw.Paging.offset_in_page wordno)
        end
        else Error (Rings.Fault.Missing_page { segno; pageno })
  end

let resolve_uncached t (addr : Hw.Addr.t) =
  match fetch_sdw t ~segno:addr.Hw.Addr.segno with
  | Error _ as e -> e
  | Ok sdw -> (
      let translated =
        if sdw.Hw.Sdw.paged then
          translate_paged_cached t sdw ~segno:addr.Hw.Addr.segno
            ~wordno:addr.Hw.Addr.wordno
        else
          Hw.Descriptor.translate sdw ~segno:addr.Hw.Addr.segno
            ~wordno:addr.Hw.Addr.wordno
      in
      match translated with Error _ as e -> e | Ok abs -> Ok (sdw, abs))

let resolve_slow t (addr : Hw.Addr.t) key =
  let res = resolve_uncached t addr in
  (match res with
  | Ok (sdw, _) when not t.degraded ->
      let i = resolve_index key in
      t.resolve_slots.(i) <- key;
      t.resolve_entries.(i) <-
        { r_res = res; r_gen = t.fetch_gen; r_paged = sdw.Hw.Sdw.paged }
  | Ok _ | Error _ -> ());
  res

(* Replay the filling walk's modeled activity: a free SDW fetch from
   the modeled associative memory, plus — through a page table — the
   PTW retrieval's counted, charged core read. *)
let resolve t (addr : Hw.Addr.t) =
  let base = t.regs.Hw.Registers.dbr.Hw.Registers.base in
  if base <> t.sdw_cache_base then sync_dbr_base t base;
  let key =
    resolve_key ~base ~segno:addr.Hw.Addr.segno ~wordno:addr.Hw.Addr.wordno
  in
  let i = resolve_index key in
  if (not t.degraded) && Array.unsafe_get t.resolve_slots i = key then begin
    let e = Array.unsafe_get t.resolve_entries i in
    if e.r_gen = t.fetch_gen then begin
      let c = t.counters in
      Trace.Counters.bump_sdw_fetches c;
      Trace.Counters.bump_sdw_cache_hits c;
      if e.r_paged then begin
        Trace.Counters.bump_ptw_fetches c;
        Trace.Counters.bump_memory_reads c;
        Trace.Counters.charge c Hw.Costs.memory_access;
        Trace.Counters.bump_ptw_tlb_hits c
      end;
      e.r_res
    end
    else resolve_slow t addr key
  end
  else resolve_slow t addr key

(* Instruction retrieval with a decoded-instruction cache keyed by
   absolute address.  The modeled activity on either path is the one
   memory read the uncached fetch performed; the cache spares the host
   the word read and re-decode.  The write observer drops entries for
   stored-to addresses, so self-modifying code decodes the new word. *)
let fetch_decoded t abs =
  Trace.Counters.bump_memory_reads t.counters;
  Trace.Counters.charge t.counters Hw.Costs.memory_access;
  match (if t.degraded then None else Hw.Assoc.find t.icache abs) with
  | Some instr ->
      Trace.Counters.bump_icache_hits t.counters;
      Ok instr
  | None -> (
      Trace.Counters.bump_icache_misses t.counters;
      match Instr.decode (Hw.Memory.read_silent t.mem abs) with
      | Error _ as e -> e
      | Ok instr ->
          if not t.degraded then begin
            (match Hw.Assoc.insert t.icache abs instr with
            | None -> ()
            | Some _ -> Trace.Counters.bump_icache_evictions t.counters);
            Bytes.unsafe_set t.watched abs
              (Char.unsafe_chr
                 (Char.code (Bytes.unsafe_get t.watched abs) lor bit_icache))
          end;
          Ok instr)

let validate_fetch t (sdw : Hw.Sdw.t) ~ring =
  Rings.Backend.validate_fetch t.backend sdw.access ~ring

(* Whole-fetch memoization: translation, execute validation, word
   read and decode collapsed into one lookup.  An entry is filled
   only from a successful uncached fetch of an unpaged segment whose
   SDW tag is (now) resident, so a generation-current hit replays
   precisely the modeled activity of that walk: one free SDW fetch
   from the modeled associative memory and one core read of the
   instruction word.  Anything that could change any ingredient —
   a store into a descriptor segment, an SDW invalidation, a flush
   of the modeled tag store — advances [fetch_gen]; a store over the
   cached word drops the entry itself via [fetch_watch]. *)
let fetch_instr_slow t (ipr : Hw.Registers.ptr) key =
  let addr = ipr.Hw.Registers.addr in
  match resolve t addr with
  | Error _ as e -> e
  | Ok (sdw, abs) -> (
      match validate_fetch t sdw ~ring:ipr.Hw.Registers.ring with
      | Error _ as e -> e
      | Ok () -> (
          match fetch_decoded t abs with
          | Error _ as e -> e
          | Ok _ as res ->
              if not t.degraded then begin
                (* The watch table accumulates a binding per distinct
                   (word, key) pair; slot overwrites leave old bindings
                   harmlessly stale, so bound its growth by starting the
                   memo over when it gets far larger than the slots. *)
                if Hashtbl.length t.fetch_watch > 4 * fetch_cache_slots
                then begin
                  Array.fill t.fetch_slots 0 fetch_cache_slots (-1);
                  Hashtbl.reset t.fetch_watch
                end;
                let i = fetch_index key in
                t.fetch_slots.(i) <- key;
                t.fetch_entries.(i) <-
                  {
                    f_res = res;
                    f_gen = t.fetch_gen;
                    f_paged = sdw.Hw.Sdw.paged;
                  };
                watch t ~bit:bit_fetch t.fetch_watch abs key
              end;
              res))

let fetch_instr t =
  let ipr = t.regs.Hw.Registers.ipr in
  let base = t.regs.Hw.Registers.dbr.Hw.Registers.base in
  if base <> t.sdw_cache_base then sync_dbr_base t base;
  let addr = ipr.Hw.Registers.addr in
  let key =
    fetch_key ~base
      ~ring:(Rings.Ring.to_int ipr.Hw.Registers.ring)
      ~segno:addr.Hw.Addr.segno ~wordno:addr.Hw.Addr.wordno
  in
  let i = fetch_index key in
  if (not t.degraded) && Array.unsafe_get t.fetch_slots i = key then begin
    let e = Array.unsafe_get t.fetch_entries i in
    if e.f_gen = t.fetch_gen then begin
      let c = t.counters in
      Trace.Counters.bump_sdw_fetches c;
      Trace.Counters.bump_sdw_cache_hits c;
      if e.f_paged then begin
        (* The walk's PTW retrieval: one counted, charged core read. *)
        Trace.Counters.bump_ptw_fetches c;
        Trace.Counters.bump_memory_reads c;
        Trace.Counters.charge c Hw.Costs.memory_access;
        Trace.Counters.bump_ptw_tlb_hits c
      end;
      Trace.Counters.bump_memory_reads c;
      Trace.Counters.charge c Hw.Costs.memory_access;
      Trace.Counters.bump_icache_hits c;
      e.f_res
    end
    else fetch_instr_slow t ipr key
  end
  else fetch_instr_slow t ipr key

let validate_read t (sdw : Hw.Sdw.t) ~effective =
  Rings.Backend.validate_read t.backend sdw.access ~effective

let validate_write t (sdw : Hw.Sdw.t) ~effective =
  Rings.Backend.validate_write t.backend sdw.access ~effective

let validate_transfer t (sdw : Hw.Sdw.t) ~exec ~effective =
  Rings.Backend.validate_transfer t.backend sdw.access ~exec ~effective

let take_fault t ~at fault =
  Trace.Counters.bump_traps t.counters;
  if Rings.Fault.is_access_violation fault then
    Trace.Counters.bump_access_violations t.counters;
  Trace.Counters.charge t.counters Hw.Costs.trap_entry;
  if Trace.Event.enabled t.log then
    Trace.Event.record_trap t.log
      ~ring:(Rings.Ring.to_int (ring t))
      ~cause:(Rings.Fault.to_string fault);
  let regs = Hw.Registers.copy t.regs in
  regs.Hw.Registers.ipr <- at;
  t.saved <- Some { regs; fault };
  t.inhibit <- true;
  (* With a simulated supervisor configured, complete the trap in
     hardware: conditions to memory, ring 0, fixed location. *)
  match t.trap_config with
  | None -> ()
  | Some { vector_base; conditions_base } -> (
      match Hw.Descriptor.resolve t.mem t.regs.Hw.Registers.dbr conditions_base with
      | Error _ -> () (* misconfigured: leave the fault to the host *)
      | Ok (_, abs) ->
          let words =
            Hw.Conditions.store regs ~fault_code:(Rings.Fault.code fault)
          in
          Array.iteri
            (fun i w -> Hw.Memory.write_silent t.mem (abs + i) w)
            words;
          t.regs.Hw.Registers.ipr <-
            {
              Hw.Registers.ring = Rings.Ring.r0;
              addr = Hw.Addr.offset vector_base (Rings.Fault.code fault);
            })

let restore_saved t =
  t.inhibit <- false;
  match t.trap_config with
  | Some { conditions_base; _ } -> (
      (* Reload the conditions from memory, where the supervisor may
         have patched them. *)
      Trace.Counters.charge t.counters Hw.Costs.trap_restore;
      match Hw.Descriptor.resolve t.mem t.regs.Hw.Registers.dbr conditions_base with
      | Error _ -> invalid_arg "Machine.restore_saved: conditions unreachable"
      | Ok (_, abs) ->
          let words =
            Array.init Hw.Conditions.words (fun i ->
                Hw.Memory.read_silent t.mem (abs + i))
          in
          ignore (Hw.Conditions.load t.regs words);
          t.saved <- None)
  | None -> (
      match t.saved with
      | None -> invalid_arg "Machine.restore_saved: no saved state"
      | Some { regs; _ } ->
          Trace.Counters.charge t.counters Hw.Costs.trap_restore;
          Hw.Registers.restore t.regs ~from:regs;
          t.saved <- None)

(* {1 Fault injection} *)

let attach_injector t inj = t.injector <- Some inj

(* Graceful degradation after coherence damage: flush and disable the
   host-side performance caches and run uncached from here on.  The
   modeled associative memory ([sdw_tags]) is untouched — its hit/miss
   pattern is part of the cycle accounting and must not change — and
   [sdw_watch] stays armed so the tags' host decodes keep healing on
   descriptor writes. *)
let degrade t =
  if not t.degraded then begin
    t.degraded <- true;
    Trace.Counters.bump_degraded t.counters;
    Hw.Assoc.clear t.sdw_cache;
    Hw.Assoc.clear t.ptw_tlb;
    Hw.Assoc.clear t.icache;
    Array.fill t.fetch_slots 0 fetch_cache_slots (-1);
    Array.fill t.resolve_slots 0 resolve_cache_slots (-1);
    Hashtbl.reset t.fetch_watch;
    Hashtbl.reset t.ptw_watch;
    t.fetch_gen <- t.fetch_gen + 1;
    t.resident_bases <- []
  end

(* Checkpoint boundary.  Flush every host-side memoization layer and
   demote every modeled SDW tag to the absent sentinel — keys survive,
   because the tag-store population drives modeled accounting (the
   wholesale flush in [tag_insert], and the hit-vs-walk split in
   [fetch_sdw]).  The live run calls this at every checkpoint it
   writes, and [restore] rebuilds exactly this state in a fresh
   machine, so both continue from identical cold host caches and the
   counters they export stay byte-identical.  Unlike [degrade] the
   caches come back: the next references refill them. *)
let quiesce t =
  Hw.Assoc.clear t.sdw_cache;
  Hw.Assoc.clear t.ptw_tlb;
  Hw.Assoc.clear t.icache;
  Array.fill t.fetch_slots 0 fetch_cache_slots (-1);
  Array.fill t.resolve_slots 0 resolve_cache_slots (-1);
  Hashtbl.reset t.fetch_watch;
  Hashtbl.reset t.ptw_watch;
  t.fetch_gen <- t.fetch_gen + 1;
  t.resident_bases <- [];
  t.sdw_cache_base <- -1;
  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) t.sdw_tags [] in
  List.iter (fun k -> Hashtbl.replace t.sdw_tags k Hw.Sdw.absent) keys

(* Called by the CPU between instructions (never under [inhibit]).
   Corruption has already been applied by [Inject.poll] through the
   silent-write path, so the write observer has kept the host caches
   coherent with the damaged word; what comes back here is the fault
   the processor's checking hardware would raise.  I/O events only
   arm state that the completion path consumes. *)
let poll_injection t =
  match t.injector with
  | None -> None
  | Some inj -> (
      match
        Hw.Inject.poll inj ~mem:t.mem
          ~cycles:(Trace.Counters.cycles t.counters)
      with
      | None -> None
      | Some ev -> (
          Trace.Counters.bump_injected t.counters;
          match ev with
          | Hw.Inject.Deliver_parity { addr; transient = _ } ->
              Some (Rings.Fault.Parity_error { addr })
          | Hw.Inject.Fail_next_io ->
              t.io_fail_pending <- true;
              None
          | Hw.Inject.Stall_io n ->
              (match t.io_countdown with
              | Some k -> t.io_countdown <- Some (k + n)
              | None -> ());
              None))
