(* ringsim: assemble and run a multi-segment program under either ring
   implementation.

   A program file contains one or more segments, each introduced by a
   header line:

     %segment NAME proc execute=N callable=M [readable=no]
     %segment NAME data write=N read=M

   followed by assembly source (see lib/asm).  Example:

     %segment main proc execute=4 callable=4
     start: mme =2

   Run with:
     dune exec bin/ringsim.exe -- run prog.rng --start main --ring 4
*)

type header = {
  h_name : string;
  h_access : Rings.Access.t;
}

(* %process NAME user=U start=seg$entry ring=N [quantum-shared segments:
   shared=seg:owner[,seg:owner...]] [paged] *)
type process_decl = {
  d_name : string;
  d_user : string;
  d_start : string;
  d_ring : int;
  d_shared : (string * string) list;
  d_paged : bool;
}

let parse_process_decl line lineno =
  let parts =
    String.split_on_char ' ' line |> List.filter (fun s -> s <> "")
  in
  match parts with
  | "%process" :: name :: rest ->
      let find key default =
        let prefix = key ^ "=" in
        List.fold_left
          (fun acc p ->
            if
              String.length p > String.length prefix
              && String.sub p 0 (String.length prefix) = prefix
            then
              String.sub p (String.length prefix)
                (String.length p - String.length prefix)
            else acc)
          default rest
      in
      let shared =
        match find "shared" "" with
        | "" -> []
        | spec ->
            String.split_on_char ',' spec
            |> List.filter_map (fun pair ->
                   match String.split_on_char ':' pair with
                   | [ seg; owner ] -> Some (seg, owner)
                   | _ -> None)
      in
      Ok
        {
          d_name = name;
          d_user = find "user" "operator";
          d_start = find "start" "main$start";
          d_ring = int_of_string_opt (find "ring" "4") |> Option.value ~default:4;
          d_shared = shared;
          d_paged = List.mem "paged" rest;
        }
  | _ -> Error (Printf.sprintf "line %d: bad %%process header" lineno)

let parse_header line lineno =
  let parts =
    String.split_on_char ' ' line
    |> List.filter (fun s -> s <> "")
  in
  let kv key default =
    let prefix = key ^ "=" in
    List.fold_left
      (fun acc p ->
        if String.length p > String.length prefix
           && String.sub p 0 (String.length prefix) = prefix
        then
          int_of_string_opt
            (String.sub p (String.length prefix)
               (String.length p - String.length prefix))
        else acc)
      default parts
  in
  let flag key =
    List.mem (key ^ "=no") parts |> not
  in
  match parts with
  | "%segment" :: name :: kind :: _ -> (
      match kind with
      | "proc" ->
          let execute = Option.value ~default:4 (kv "execute" None) in
          let callable = Option.value ~default:execute (kv "callable" None) in
          Ok
            {
              h_name = name;
              h_access =
                Rings.Access.procedure_segment ~readable:(flag "readable")
                  ~execute_in:execute ~callable_from:callable ();
            }
      | "data" ->
          let write = Option.value ~default:4 (kv "write" None) in
          let read = Option.value ~default:write (kv "read" None) in
          Ok
            {
              h_name = name;
              h_access =
                Rings.Access.data_segment ~writable_to:write
                  ~readable_to:read ();
            }
      | k -> Error (Printf.sprintf "line %d: unknown segment kind %s" lineno k))
  | _ -> Error (Printf.sprintf "line %d: bad %%segment header" lineno)

let parse_program text =
  let lines = String.split_on_char '\n' text in
  let rec go current acc procs lineno = function
    | [] -> (
        match current with
        | None -> Ok (List.rev acc, List.rev procs)
        | Some (h, body) ->
            Ok
              ( List.rev ((h, String.concat "\n" (List.rev body)) :: acc),
                List.rev procs ))
    | line :: rest ->
        if String.length line >= 8 && String.sub line 0 8 = "%segment" then
          match parse_header line lineno with
          | Error e -> Error e
          | Ok h ->
              let acc =
                match current with
                | None -> acc
                | Some (h', body) ->
                    (h', String.concat "\n" (List.rev body)) :: acc
              in
              go (Some (h, [])) acc procs (lineno + 1) rest
        else if String.length line >= 8 && String.sub line 0 8 = "%process"
        then
          match parse_process_decl line lineno with
          | Error e -> Error e
          | Ok d ->
              let acc =
                match current with
                | None -> acc
                | Some (h', body) ->
                    (h', String.concat "\n" (List.rev body)) :: acc
              in
              go None acc (d :: procs) (lineno + 1) rest
        else (
          match current with
          | None ->
              let t = String.trim line in
              if t = "" || t.[0] = ';' then go current acc procs (lineno + 1) rest
              else
                Error
                  (Printf.sprintf "line %d: text before first %%segment"
                     lineno)
          | Some (h, body) ->
              go (Some (h, line :: body)) acc procs (lineno + 1) rest)
  in
  go None [] [] 1 lines

(* Observability outputs: which exporters to run after the program
   finishes, and whether to print the profile tables. *)
type obs = {
  trace_out : string option;  (** Chrome trace-event JSON. *)
  events_out : string option;  (** JSONL raw event dump. *)
  metrics_out : string option;  (** JSON metrics snapshot. *)
  metrics_prom : string option;  (** Prometheus text metrics. *)
  profile : bool;  (** Print per-ring/per-segment tables. *)
  sample : int;  (** Keep 1 in N events/spans (deterministic). *)
  sample_instr : int;
      (** Separate 1-in-N rate for the instruction stream; 0 follows
          [sample]. *)
  trace_cap : int option;  (** Event ring-buffer capacity override. *)
}

let obs_active o =
  o.trace_out <> None || o.events_out <> None || o.metrics_out <> None
  || o.metrics_prom <> None || o.profile

(* Spans and the profile are cheap (no per-instruction event
   formatting or allocation), so any observability request turns them
   on; the full event log only when an event-consuming exporter asked
   for it.  Capacity and sampling are configured before enabling so
   the first recorded event already obeys them. *)
let enable_obs o (m : Isa.Machine.t) =
  (match o.trace_cap with
  | Some n -> Trace.Event.set_capacity m.Isa.Machine.log n
  | None -> ());
  if o.sample > 1 then begin
    Trace.Event.set_sampling m.Isa.Machine.log ~interval:o.sample ~seed:0;
    Trace.Span.set_sampling m.Isa.Machine.spans ~interval:o.sample ~seed:0
  end;
  if o.sample_instr > 0 then
    Trace.Event.set_instr_sampling m.Isa.Machine.log ~interval:o.sample_instr;
  if o.trace_out <> None || o.events_out <> None then
    Trace.Event.set_enabled m.Isa.Machine.log true;
  if obs_active o then begin
    Trace.Span.set_enabled m.Isa.Machine.spans true;
    Trace.Profile.set_enabled m.Isa.Machine.profile true
  end

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

(* The on-disk delta files of a checkpoint chain: BASE.d0001,
   BASE.d0002, ... — lexicographic order is capture order. *)
let delta_files base =
  let dir = Filename.dirname base in
  let prefix = Filename.basename base ^ ".d" in
  (try Array.to_list (Sys.readdir dir) with Sys_error _ -> [])
  |> List.filter (fun f ->
         String.length f = String.length prefix + 4
         && String.sub f 0 (String.length prefix) = prefix
         && String.for_all
              (fun c -> c >= '0' && c <= '9')
              (String.sub f (String.length prefix) 4))
  |> List.sort compare
  |> List.map (Filename.concat dir)

let print_profile (m : Isa.Machine.t) ~segment_names =
  let profile = m.Isa.Machine.profile in
  let t =
    Trace.Tablefmt.create
      ~columns:
        [
          ("ring", Trace.Tablefmt.Left);
          ("cycles", Trace.Tablefmt.Right);
          ("instructions", Trace.Tablefmt.Right);
        ]
  in
  List.iter
    (fun (ring, cycles, instructions) ->
      Trace.Tablefmt.add_row t
        [
          Printf.sprintf "r%d" ring;
          string_of_int cycles;
          string_of_int instructions;
        ])
    (Trace.Profile.per_ring profile);
  Trace.Tablefmt.add_row t
    [
      "gatekeeper";
      string_of_int (Trace.Profile.kernel_cycles profile);
      "-";
    ];
  Trace.Tablefmt.print ~title:"Profile - modeled cycles by ring" t;
  print_newline ();
  let t =
    Trace.Tablefmt.create
      ~columns:
        [
          ("segment", Trace.Tablefmt.Left);
          ("cycles", Trace.Tablefmt.Right);
          ("instructions", Trace.Tablefmt.Right);
        ]
  in
  List.iter
    (fun (segno, cycles, instructions) ->
      let name =
        match List.assoc_opt segno segment_names with
        | Some n -> Printf.sprintf "%d (%s)" segno n
        | None -> string_of_int segno
      in
      Trace.Tablefmt.add_row t
        [ name; string_of_int cycles; string_of_int instructions ])
    (Trace.Profile.per_segment profile);
  Trace.Tablefmt.print ~title:"Profile - modeled cycles by segment" t;
  print_newline ();
  let spans = m.Isa.Machine.spans in
  let t =
    Trace.Tablefmt.create
      ~columns:
        [
          ("crossing", Trace.Tablefmt.Left);
          ("count", Trace.Tablefmt.Right);
          ("p50", Trace.Tablefmt.Right);
          ("p90", Trace.Tablefmt.Right);
          ("p99", Trace.Tablefmt.Right);
          ("max", Trace.Tablefmt.Right);
        ]
  in
  List.iter
    (fun kind ->
      let h = Trace.Span.histogram spans kind in
      Trace.Tablefmt.add_row t
        [
          Trace.Event.crossing_to_string kind;
          string_of_int (Trace.Histogram.count h);
          string_of_int (Trace.Histogram.percentile h 50.0);
          string_of_int (Trace.Histogram.percentile h 90.0);
          string_of_int (Trace.Histogram.percentile h 99.0);
          string_of_int (Trace.Histogram.max_value h);
        ])
    [ Trace.Event.Same_ring; Trace.Event.Downward; Trace.Event.Upward ];
  Trace.Tablefmt.print
    ~title:"Profile - span latency percentiles (modeled cycles)" t;
  print_newline ()

let finish_obs o (m : Isa.Machine.t) ~segment_names =
  if obs_active o then begin
    (* Close anything a fault or budget exhaustion left open so every
       exported span has an end. *)
    Trace.Span.drain m.Isa.Machine.spans
      ~cycles:(Trace.Counters.cycles m.Isa.Machine.counters);
    let counters = Trace.Counters.snapshot m.Isa.Machine.counters in
    (match o.trace_out with
    | Some path ->
        write_file path
          (Trace.Export.chrome_trace
             ~events:(Trace.Event.stamped_events m.Isa.Machine.log)
             ~spans:(Trace.Span.completed m.Isa.Machine.spans)
             ())
    | None -> ());
    (match o.events_out with
    | Some path ->
        write_file path
          (Trace.Export.events_jsonl
             (Trace.Event.stamped_events m.Isa.Machine.log))
    | None -> ());
    (match o.metrics_out with
    | Some path ->
        write_file path
          (Trace.Export.metrics_json ~counters ~events:m.Isa.Machine.log
             ~spans:m.Isa.Machine.spans ~profile:m.Isa.Machine.profile
             ~segment_names ())
    | None -> ());
    (match o.metrics_prom with
    | Some path ->
        write_file path
          (Trace.Export.metrics_prometheus ~counters
             ~events:m.Isa.Machine.log ~spans:m.Isa.Machine.spans
             ~profile:m.Isa.Machine.profile ~segment_names ())
    | None -> ());
    if o.profile then print_profile m ~segment_names
  end

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Usage, file, plan and snapshot errors exit 2; exit 1 is reserved
   for a run that executed but failed (violations, divergence). *)
let usage_error msg =
  Printf.eprintf "ringsim: %s\n" msg;
  exit 2

(* --backend NAME: resolved through the one validator every subcommand
   shares (Rings.Backend.of_string), before any file is read or store
   built — an unknown backend is a usage error (exit 2) naming the
   three valid spellings. *)
let resolve_backend name =
  match Rings.Backend.of_string name with
  | Ok Rings.Backend.Hardware -> Isa.Machine.Ring_hardware
  | Ok Rings.Backend.Software_645 -> Isa.Machine.Ring_software_645
  | Ok Rings.Backend.Capability -> Isa.Machine.Ring_capability
  | Error e -> usage_error e

(* --inject SPEC: an integer seeds the built-in default plan; anything
   else names a plan file for Hw.Inject.parse_plan. *)
let resolve_plan spec =
  match int_of_string_opt spec with
  | Some seed -> Hw.Inject.default_plan ~seed
  | None -> (
      let text =
        try read_file spec
        with Sys_error e -> usage_error ("cannot read injection plan: " ^ e)
      in
      match Hw.Inject.parse_plan text with
      | Ok p -> p
      | Error e -> usage_error (Printf.sprintf "%s: %s" spec e))

let inject_into_machine plan m processes =
  let inj = Hw.Inject.create plan in
  List.iter
    (fun p ->
      List.iter
        (fun (base, len) -> Hw.Inject.register_descriptor_range inj ~base ~len)
        (Os.Process.descriptor_ranges p))
    processes;
  Isa.Machine.attach_injector m inj

let run_campaigns ~mode inject campaigns obs =
  let plan =
    match inject with
    | Some spec -> resolve_plan spec
    | None -> Hw.Inject.default_plan ~seed:0
  in
  let r = Os.Chaos.run_campaigns ~mode ~campaigns plan in
  Format.printf "%a" Os.Chaos.pp_report r;
  (match obs.metrics_out with
  | Some path -> write_file path (Os.Chaos.report_json r)
  | None -> ());
  exit (if r.Os.Chaos.violations = [] then 0 else 1)

let run_program file backend start ring trace listing dump show_map typed
    max_instructions inject campaigns checkpoint_every checkpoint_to
    restore_from kill_after watchdog obs =
  (* The backend name is validated before anything is read or built:
     an unknown one must exit 2 however the rest of the line looks. *)
  let mode = resolve_backend backend in
  if obs.sample < 1 then usage_error "--sample must be positive";
  if obs.sample_instr < 0 then
    usage_error "--sample-instr must be nonnegative";
  (match obs.trace_cap with
  | Some n when n < 1 -> usage_error "--trace-cap must be positive"
  | _ -> ());
  (match campaigns with
  | Some n -> run_campaigns ~mode inject n obs
  | None -> ());
  (match checkpoint_every with
  | Some n when n <= 0 -> usage_error "--checkpoint-every must be positive"
  | _ -> ());
  (match (checkpoint_every, checkpoint_to) with
  | Some _, None -> usage_error "--checkpoint-every requires --checkpoint-to"
  | _ -> ());
  let file =
    match file with
    | Some f -> f
    | None ->
        usage_error "a program FILE is required (unless running --campaigns)"
  in
  let text = try read_file file with Sys_error e -> usage_error e in
  match parse_program text with
  | Error e -> usage_error (Printf.sprintf "%s: %s" file e)
  | Ok (segments, procs) ->
      let store = Os.Store.create () in
      List.iter
        (fun (h, src) ->
          Os.Store.add_source store ~name:h.h_name
            ~acl:[ { Os.Acl.user = Os.Acl.wildcard; access = h.h_access } ]
            src)
        segments;
      if procs <> [] then begin
        (* Multi-process mode: spawn each declaration and multiplex. *)
        let t = Os.System.create ~mode ~store () in
        enable_obs obs (Os.System.machine t);
        let seg_names = List.map (fun (h, _) -> h.h_name) segments in
        let first = ref true in
        List.iter
          (fun d ->
            let start_segment, start_entry =
              match String.index_opt d.d_start '$' with
              | Some i ->
                  ( String.sub d.d_start 0 i,
                    String.sub d.d_start (i + 1)
                      (String.length d.d_start - i - 1) )
              | None -> (d.d_start, "start")
            in
            let own =
              List.filter
                (fun n -> not (List.mem_assoc n d.d_shared))
                seg_names
            in
            match
              Os.System.spawn ~shared:d.d_shared ~paged:d.d_paged t
                ~pname:d.d_name ~user:d.d_user ~segments:own
                ~start:(start_segment, start_entry) ~ring:d.d_ring
            with
            | Ok e ->
                (* --type feeds the first declared process. *)
                (match typed with
                | Some text when !first ->
                    Os.Device.feed e.Os.System.process.Os.Process.typewriter
                      text
                | _ -> ());
                first := false
            | Error e -> usage_error (Printf.sprintf "spawn %s: %s" d.d_name e))
          procs;
        (match inject with
        | Some spec ->
            inject_into_machine (resolve_plan spec) (Os.System.machine t)
              (List.map
                 (fun (e : Os.System.entry) -> e.Os.System.process)
                 (Os.System.entries t))
        | None -> ());
        let machine = Os.System.machine t in
        let cycles () = Trace.Counters.cycles machine.Isa.Machine.counters in
        (* --restore: overwrite the freshly spawned system with the
           checkpoint image.  Must run under the same program file and
           flags; anything the image cannot prove whole is refused. *)
        (match restore_from with
        | Some base -> (
            let image =
              try read_file base
              with Sys_error e -> usage_error ("cannot read snapshot: " ^ e)
            in
            (* A checkpointed run leaves BASE plus the delta files
               captured since BASE was last folded; restore applies
               the whole chain, oldest delta first.  Any mixed,
               reordered or damaged link is refused before state is
               touched. *)
            let deltas =
              List.map
                (fun p ->
                  try read_file p
                  with Sys_error e ->
                    usage_error ("cannot read snapshot delta: " ^ e))
                (delta_files base)
            in
            match Os.Snapshot.restore_chain t ~base:image deltas with
            | Ok () -> ()
            | Error err ->
                usage_error
                  (Format.asprintf "restore %s: %a" base Os.Snapshot.pp_error
                     err))
        | None -> ());
        (* The write-ahead device journal lives next to the snapshot:
           BASE.journal.  On restore it is preloaded as the replay
           table (output the dead run already emitted is verified, not
           re-emitted) and then appended to. *)
        let journal_base =
          match (checkpoint_to, restore_from) with
          | Some b, _ | None, Some b -> Some b
          | None, None -> None
        in
        (match journal_base with
        | Some base ->
            let jpath = base ^ ".journal" in
            let journal_of pname =
              List.find_opt
                (fun (e : Os.System.entry) ->
                  String.equal e.Os.System.pname pname)
                (Os.System.entries t)
              |> Option.map (fun (e : Os.System.entry) ->
                     Os.Device.journal
                       e.Os.System.process.Os.Process.typewriter)
            in
            if restore_from <> None && Sys.file_exists jpath then
              List.iter
                (fun line ->
                  if String.trim line <> "" then
                    match Hw.Journal.of_line line with
                    | Ok (pname, record) -> (
                        match journal_of pname with
                        | Some j -> Hw.Journal.preload j record
                        | None ->
                            usage_error
                              (Printf.sprintf
                                 "journal %s names unknown process %s" jpath
                                 pname))
                    | Error e ->
                        usage_error (Printf.sprintf "journal %s: %s" jpath e))
                (String.split_on_char '\n' (read_file jpath));
            let oc =
              open_out_gen
                (if restore_from <> None then
                   [ Open_append; Open_creat; Open_wronly ]
                 else [ Open_trunc; Open_creat; Open_wronly ])
                0o644 jpath
            in
            at_exit (fun () -> try close_out oc with Sys_error _ -> ());
            List.iter
              (fun (e : Os.System.entry) ->
                Hw.Journal.set_sink
                  (Os.Device.journal e.Os.System.process.Os.Process.typewriter)
                  (fun record ->
                    output_string oc
                      (Hw.Journal.to_line ~pname:e.Os.System.pname record);
                    output_char oc '\n';
                    flush oc))
              (Os.System.entries t)
        | None -> ());
        (* Checkpoint cadence: the next due point is derived from the
           current cycle count by the same formula live and resumed,
           so both runs quiesce and capture at identical boundaries. *)
        let next_due = ref max_int in
        (match checkpoint_every with
        | Some n -> next_due := ((cycles () / n) + 1) * n
        | None -> ());
        (* Checkpoints persist as an on-disk delta chain: the first
           due point writes the full BASE and opens a chain; each
           later one appends only the pages dirtied since
           (BASE.d0001, BASE.d0002, ...).  Every [gc_every] deltas the
           chain is folded: BASE is rewritten as the flatten of
           itself plus its deltas — byte-identical to a full capture
           at that point — the folded delta files are deleted, and
           the live chain is re-anchored on the new BASE. *)
        let gc_every = 8 in
        let chain = ref None in
        let checkpoint base =
          match !chain with
          | None ->
              let c, image = Os.Snapshot.start_chain t in
              write_file base image;
              List.iter Sys.remove (delta_files base);
              chain := Some c
          | Some c ->
              let delta = Os.Snapshot.capture_delta t c in
              write_file
                (Printf.sprintf "%s.d%04d" base (Os.Snapshot.chain_length c))
                delta;
              if Os.Snapshot.chain_length c >= gc_every then begin
                let files = delta_files base in
                match
                  Os.Snapshot.flatten ~base:(read_file base)
                    (List.map read_file files)
                with
                | Error err ->
                    Printf.eprintf
                      "ringsim: checkpoint gc: %s\n"
                      (Format.asprintf "%a" Os.Snapshot.pp_error err);
                    exit 2
                | Ok folded -> (
                    write_file base folded;
                    List.iter Sys.remove files;
                    match Os.Snapshot.rebase c ~base:folded with
                    | Ok () -> ()
                    | Error err ->
                        Printf.eprintf
                          "ringsim: checkpoint gc: %s\n"
                          (Format.asprintf "%a" Os.Snapshot.pp_error err);
                        exit 2)
              end
        in
        let on_slice () =
          (match (checkpoint_every, checkpoint_to) with
          | Some n, Some base when cycles () >= !next_due ->
              checkpoint base;
              next_due := ((cycles () / n) + 1) * n
          | _ -> ());
          match kill_after with
          | Some c when cycles () >= c ->
              Printf.eprintf "ringsim: killed at %d modeled cycles\n"
                (cycles ());
              exit 0
          | _ -> ()
        in
        let (_ : (string * Os.Kernel.exit) list) =
          Os.System.run ?watchdog ~on_slice t
        in
        (* The cumulative completion log, not this call's exits: a
           resumed run reports the exits the dead run observed before
           the checkpoint too, keeping stdout byte-identical. *)
        List.iter
          (fun (name, exit) ->
            Format.printf "%-10s %a@." name Os.Kernel.pp_exit exit)
          (Os.System.finished_log t);
        Format.printf "%a@." Trace.Counters.pp_snapshot
          (Trace.Counters.snapshot machine.Isa.Machine.counters);
        (* Segment numbering is per process in multi-process mode, so
           the shared exports use bare segment numbers. *)
        finish_obs obs machine ~segment_names:[];
        let diverged = ref false in
        List.iter
          (fun (e : Os.System.entry) ->
            match
              Hw.Journal.divergence
                (Os.Device.journal e.Os.System.process.Os.Process.typewriter)
            with
            | Some msg ->
                Printf.eprintf "ringsim: %s: %s\n" e.Os.System.pname msg;
                diverged := true
            | None -> ())
          (Os.System.entries t);
        exit (if !diverged then 1 else 0)
      end;
      (match (checkpoint_every, checkpoint_to, restore_from, kill_after,
              watchdog)
       with
      | None, None, None, None, None -> ()
      | _ ->
          usage_error
            "--checkpoint-every/--checkpoint-to/--restore/--kill-after/\
             --watchdog require %process declarations");
      if listing then
        List.iter
          (fun (h, src) ->
            match Asm.Assemble.assemble src with
            | Ok prog ->
                Printf.printf "--- %s ---\n%s\n" h.h_name
                  (Asm.Assemble.listing src prog)
            | Error _ ->
                (* Cross-segment externals resolve only at load time;
                   the full assembly below will report real errors. *)
                Printf.printf "--- %s (externals unresolved) ---\n" h.h_name)
          segments;
      let p = Os.Process.create ~mode ~store ~user:"operator" () in
      (match
         Os.Process.add_segments p (List.map (fun (h, _) -> h.h_name) segments)
       with
      | Ok () -> ()
      | Error e -> usage_error (Printf.sprintf "load: %s" e));
      let start_segment, start_entry =
        match String.index_opt start '$' with
        | Some i ->
            ( String.sub start 0 i,
              String.sub start (i + 1) (String.length start - i - 1) )
        | None -> (start, "start")
      in
      (match Os.Process.start p ~segment:start_segment ~entry:start_entry ~ring with
      | Ok () -> ()
      | Error e -> usage_error (Printf.sprintf "start: %s" e));
      if show_map then Format.printf "%a@." Os.Process.pp_layout p;
      (match inject with
      | Some spec ->
          inject_into_machine (resolve_plan spec) p.Os.Process.machine [ p ]
      | None -> ());
      if trace then Trace.Event.set_enabled p.Os.Process.machine.Isa.Machine.log true;
      enable_obs obs p.Os.Process.machine;
      (match typed with
      | Some text -> Os.Device.feed p.Os.Process.typewriter text
      | None -> ());
      let exit_state = Os.Kernel.run ~max_instructions p in
      if trace then
        Format.printf "%a@." Trace.Event.pp_log p.Os.Process.machine.Isa.Machine.log;
      Format.printf "exit: %a@." Os.Kernel.pp_exit exit_state;
      Format.printf "A = %d, Q = %d@."
        p.Os.Process.machine.Isa.Machine.regs.Hw.Registers.a
        p.Os.Process.machine.Isa.Machine.regs.Hw.Registers.q;
      (let printed = Os.Device.output_text p.Os.Process.typewriter in
       if printed <> "" then Format.printf "typewriter output: %S@." printed);
      Format.printf "%a@." Trace.Counters.pp_snapshot
        (Trace.Counters.snapshot p.Os.Process.machine.Isa.Machine.counters);
      finish_obs obs p.Os.Process.machine
        ~segment_names:
          (List.map
             (fun (l : Os.Process.loaded) ->
               (l.Os.Process.segno, l.Os.Process.name))
             p.Os.Process.loaded);
      if dump then
        List.iter
          (fun (l : Os.Process.loaded) ->
            let words =
              Array.init l.Os.Process.bound (fun wordno ->
                  match
                    Os.Process.kread p
                      (Hw.Addr.v ~segno:l.Os.Process.segno ~wordno)
                  with
                  | Ok w -> w
                  | Error _ -> 0)
            in
            print_string
              (Asm.Disasm.segment ~symbols:l.Os.Process.symbols
                 ~base_label:l.Os.Process.name words))
          (List.rev p.Os.Process.loaded)

(* ------------------------------------------------------------------ *)
(* serve: the sharded multi-domain serving fleet (lib/serve). *)

(* --snapshot BASE persistence: one image file per service class,
   BASE.PROGRAM.ITERATIONS.snap, so a later run can warm-boot its
   fleet from disk instead of assembling every class again. *)
let snapshot_file base (program, iterations) =
  Printf.sprintf "%s.%s.%d.snap" base program iterations

let load_preload base =
  let dir = Filename.dirname base in
  let prefix = Filename.basename base ^ "." in
  if not (Sys.file_exists dir && Sys.is_directory dir) then []
  else
    Sys.readdir dir |> Array.to_list |> List.sort compare
    |> List.filter_map (fun f ->
           if
             String.length f > String.length prefix + 5
             && String.sub f 0 (String.length prefix) = prefix
             && Filename.check_suffix f ".snap"
           then
             let mid =
               String.sub f (String.length prefix)
                 (String.length f - String.length prefix - 5)
             in
             match String.rindex_opt mid '.' with
             | None -> None
             | Some i ->
                 let program = String.sub mid 0 i in
                 int_of_string_opt
                   (String.sub mid (i + 1) (String.length mid - i - 1))
                 |> Option.map (fun iters ->
                        ( (program, iters),
                          read_file (Filename.concat dir f) ))
           else None)

let save_images base fleet =
  let images =
    Array.to_list fleet
    |> List.concat_map Serve.Shard.images
    |> List.sort_uniq compare
  in
  (* Shards build identical images for a class, so keep the first. *)
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (k, img) ->
      if not (Hashtbl.mem seen k) then begin
        Hashtbl.add seen k ();
        write_file (snapshot_file base k) img
      end)
    images

(* --migrate WINDOW:FROM:TO — drain shard FROM at dispatch window
   WINDOW and move its classes to shard TO. *)
let parse_migrate spec =
  match String.split_on_char ':' spec with
  | [ w; f; t ] -> (
      match
        (int_of_string_opt w, int_of_string_opt f, int_of_string_opt t)
      with
      | Some w, Some f, Some t -> (w, f, t)
      | _ -> usage_error "--migrate must be WINDOW:FROM:TO (three integers)")
  | _ -> usage_error "--migrate must be WINDOW:FROM:TO (three integers)"

let run_serve shards requests seed mix_name backend_name queue_cap
    batch_window image_cap replicas imbalance pool steal_name snapshot inject
    watchdog report_json trace_out metrics_out sample sample_instr trace_cap
    migrate_spec rolling_restart autoscale =
  (* Every flag is validated up front: a nonsensical value is a usage
     error (exit 2 with a message naming the flag), never a deep
     runtime failure. *)
  let backend = Option.map resolve_backend backend_name in
  if shards < 1 then usage_error "--shards must be at least 1";
  if requests < 0 then usage_error "--requests must be nonnegative";
  if queue_cap < 1 then usage_error "--queue-cap must be positive";
  if batch_window < 1 then usage_error "--batch-window must be positive";
  if image_cap < 0 then usage_error "--image-cap must be nonnegative";
  if replicas < 1 then usage_error "--replicas must be positive";
  if imbalance < 0 then usage_error "--imbalance must be nonnegative";
  (match pool with
  | Some p when p < 1 -> usage_error "--pool must be positive"
  | _ -> ());
  (match watchdog with
  | Some n when n < 1 -> usage_error "--watchdog must be positive"
  | _ -> ());
  if sample < 1 then usage_error "--sample must be positive";
  if sample_instr < 0 then usage_error "--sample-instr must be nonnegative";
  if trace_cap < 1 then usage_error "--trace-cap must be positive";
  let migrate = Option.map parse_migrate migrate_spec in
  (match migrate with
  | Some (w, f, t) ->
      if w < 0 then usage_error "--migrate window must be nonnegative";
      if f < 0 || f >= shards then
        usage_error "--migrate source shard out of range";
      if t < 0 || t >= shards then
        usage_error "--migrate target shard out of range";
      if f = t then usage_error "--migrate source and target must differ"
  | None -> ());
  (match rolling_restart with
  | Some n when n < 1 -> usage_error "--rolling-restart must be positive"
  | _ -> ());
  let steal =
    match steal_name with
    | "on" -> true
    | "off" -> false
    | s -> usage_error (Printf.sprintf "--steal must be on or off, not %S" s)
  in
  let mix =
    match Serve.Workload.find_mix mix_name with
    | Ok m -> m
    | Error e -> usage_error e
  in
  let plan = Option.map resolve_plan inject in
  let preload =
    match snapshot with None -> [] | Some base -> load_preload base
  in
  (* Tracing is on whenever a trace-consuming output was requested.
     The sampler is seeded from the workload seed, so a traced run is
     a deterministic function of the same inputs as an untraced one. *)
  let trace =
    if trace_out = None && metrics_out = None then None
    else
      Some
        { Serve.Shard.sample; seed; capacity = trace_cap;
          instr = sample_instr }
  in
  let reqs = Serve.Workload.generate ~mix ~seed ~requests in
  let cfg =
    {
      Serve.Dispatcher.shards;
      queue_cap;
      imbalance;
      replicas;
      batch_window;
      image_cap;
      backend;
      watchdog;
      inject = plan;
      preload;
      pool;
      steal;
      trace;
      migrate;
      restart_every = rolling_restart;
      autoscale;
    }
  in
  let r = Serve.Dispatcher.run cfg reqs in
  let agg = Serve.Aggregate.build r.Serve.Dispatcher.models
      r.Serve.Dispatcher.outcomes r.Serve.Dispatcher.stats
  in
  let stats = r.Serve.Dispatcher.stats in
  Format.printf "%a@." Serve.Aggregate.pp agg;
  (match trace_out with
  | None -> ()
  | Some path ->
      write_file path
        (Serve.Aggregate.chrome_trace r.Serve.Dispatcher.outcomes));
  (match metrics_out with
  | None -> ()
  | Some path ->
      (* The fleet-wide counter sum in the single-run metrics format,
         so the same scrapers work on fleet and single-machine runs. *)
      let counters =
        match agg.Serve.Aggregate.fleet.Serve.Aggregate.counters with
        | Some c -> c
        | None -> Trace.Counters.snapshot (Trace.Counters.create ())
      in
      write_file path (Trace.Export.metrics_json ~counters ()));
  (match report_json with
  | None -> ()
  | Some path ->
      let quote s = Printf.sprintf "\"%s\"" s in
      let opt_int = function None -> "null" | Some n -> string_of_int n in
      let config =
        [
          ("mode", quote "serve");
          ("shards", string_of_int shards);
          ("requests", string_of_int requests);
          ("seed", string_of_int seed);
          ("mix", quote mix_name);
          ( "backend",
            match backend_name with None -> "null" | Some b -> quote b );
          ("queue_cap", string_of_int queue_cap);
          ("batch_window", string_of_int batch_window);
          ("image_cap", string_of_int image_cap);
          ("replicas", string_of_int replicas);
          ("imbalance", string_of_int imbalance);
          ("pool", opt_int pool);
          ("steal", quote steal_name);
          ("watchdog", opt_int watchdog);
          ("inject", (match inject with None -> "null" | Some s -> quote s));
          ("sample", string_of_int sample);
          ("sample_instr", string_of_int sample_instr);
          ("trace_cap", string_of_int trace_cap);
          ("traced", string_of_bool (trace <> None));
          ( "migrate",
            match migrate_spec with None -> "null" | Some s -> quote s );
          ("rolling_restart", opt_int rolling_restart);
          ("autoscale", string_of_bool autoscale);
        ]
      in
      write_file path (Serve.Aggregate.report_json ~config agg));
  (match snapshot with
  | None -> ()
  | Some base -> save_images base r.Serve.Dispatcher.workers);
  (* Exit 1 when the run executed but degraded: a request failed, was
     shed, or a shard had to be quarantined. *)
  let clean =
    stats.Serve.Dispatcher.ok = stats.Serve.Dispatcher.completed
    && stats.Serve.Dispatcher.shed = 0
    && stats.Serve.Dispatcher.quarantined = 0
  in
  exit (if clean then 0 else 1)

open Cmdliner

let file = Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE")

let backend =
  Arg.(value & opt string "hw" & info [ "b"; "backend"; "m"; "mode" ]
         ~docv:"BACKEND"
         ~doc:"Protection backend: $(b,hw) (hardware rings), $(b,645) \
               (software rings, the GE-645 baseline) or $(b,cap) (the \
               capability machine).  An unknown name is a usage error \
               (exit 2).")

let start =
  Arg.(value & opt string "main" & info [ "start" ] ~docv:"SEG[$ENTRY]"
         ~doc:"Start location; entry defaults to 'start'.")

let ring =
  Arg.(value & opt int 4 & info [ "ring" ] ~docv:"N"
         ~doc:"Ring of execution to start in.")

let trace =
  Arg.(value & flag & info [ "trace" ] ~doc:"Print the execution trace.")

let listing =
  Arg.(value & flag & info [ "listing" ]
         ~doc:"Print each segment's assembly listing before running.")

let dump =
  Arg.(value & flag & info [ "dump" ]
         ~doc:"Disassemble each loaded segment after the run.")

let typed =
  Arg.(value & opt (some string) None & info [ "type" ] ~docv:"TEXT"
         ~doc:"Feed TEXT to the process's typewriter before running.")

let show_map =
  Arg.(value & flag & info [ "map" ]
         ~doc:"Print the virtual memory map before running.")

let budget =
  Arg.(value & opt int 1_000_000 & info [ "budget" ] ~docv:"N"
         ~doc:"Instruction budget.")

let trace_out =
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE"
         ~doc:"Write a Chrome trace-event JSON file (load in Perfetto \
               or chrome://tracing; 1us = 1 modeled cycle).")

let events_out =
  Arg.(value & opt (some string) None & info [ "events-out" ] ~docv:"FILE"
         ~doc:"Write the raw event log as JSON Lines, one stamped event \
               per line.")

let metrics_out =
  Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE"
         ~doc:"Write a JSON metrics snapshot: every counter, span latency \
               histograms, and the cycle profile.")

let metrics_prom =
  Arg.(value & opt (some string) None & info [ "metrics-prom" ] ~docv:"FILE"
         ~doc:"Write the same metrics in Prometheus text exposition format.")

let profile =
  Arg.(value & flag & info [ "profile" ]
         ~doc:"Print per-ring and per-segment modeled-cycle tables and \
               span latency percentiles after the run.")

let sample_arg =
  Arg.(value & opt int 1 & info [ "sample" ] ~docv:"N"
         ~doc:"Deterministic 1-in-N trace sampling: events and spans are \
               kept when a seeded hash of their sequence number selects \
               them, so the same workload samples the same records every \
               run.  1 (the default) keeps everything; discards are \
               counted and exported.")

let sample_instr_arg =
  Arg.(value & opt int 0 & info [ "sample-instr" ] ~docv:"N"
         ~doc:"Sample the instruction stream at its own deterministic \
               1-in-N rate, independent of $(b,--sample)'s rate for \
               calls, returns, traps and other control-flow events \
               (same seeded predicate, same sequence numbers — only \
               the interval differs).  0 (the default) follows \
               $(b,--sample).")

let trace_cap_arg =
  Arg.(value & opt (some int) None & info [ "trace-cap" ] ~docv:"N"
         ~doc:"Event ring-buffer capacity in events; when full, the \
               oldest events are overwritten and counted as dropped.")

let inject =
  Arg.(value & opt (some string) None & info [ "inject" ] ~docv:"SEED|SPEC"
         ~doc:"Attach the deterministic fault injector: an integer seeds \
               the built-in default plan, anything else names a plan file \
               (directives: seed, fault_budget, io_retry_limit, rule).")

let campaigns =
  Arg.(value & opt (some int) None & info [ "campaigns" ] ~docv:"N"
         ~doc:"Run N security-under-fault campaigns on the built-in chaos \
               workload instead of a program file, printing the aggregate \
               report (with --metrics-out, also writing it as JSON). \
               Exits non-zero if any protection invariant was violated.")

let checkpoint_every =
  Arg.(value & opt (some int) None & info [ "checkpoint-every" ] ~docv:"N"
         ~doc:"Write a checkpoint image every N modeled cycles (at the \
               next scheduling-slice boundary).  Requires \
               $(b,--checkpoint-to) and %process declarations.")

let checkpoint_to =
  Arg.(value & opt (some string) None & info [ "checkpoint-to" ] ~docv:"BASE"
         ~doc:"Checkpoint chain path: the first due point writes the full \
               image at BASE, later ones append dirty-page deltas as \
               BASE.d0001, BASE.d0002, ...; every 8 deltas the chain is \
               folded back into BASE and the delta files deleted.  Device \
               output is journalled write-ahead to BASE.journal.")

let restore_from =
  Arg.(value & opt (some string) None & info [ "restore" ] ~docv:"BASE"
         ~doc:"Resume from the checkpoint chain at BASE: the base image \
               plus any BASE.dNNNN delta files are validated and applied \
               oldest-first (mixed or damaged links are refused), and \
               BASE.journal is preloaded so already-emitted device output \
               is verified and skipped rather than re-emitted.  Must be \
               run with the same program file and flags that wrote the \
               chain.")

let kill_after =
  Arg.(value & opt (some int) None & info [ "kill-after" ] ~docv:"CYCLES"
         ~doc:"Abort the run at the first slice boundary at or past \
               CYCLES modeled cycles (deterministic kill point for \
               checkpoint/restore testing).")

let watchdog =
  Arg.(value & opt (some int) None & info [ "watchdog" ] ~docv:"N"
         ~doc:"Quarantine a process that retires N instructions without \
               a fault, ring crossing or channel activity \
               (multi-process mode only).")

let obs =
  let mk trace_out events_out metrics_out metrics_prom profile sample
      sample_instr trace_cap =
    { trace_out; events_out; metrics_out; metrics_prom; profile; sample;
      sample_instr; trace_cap }
  in
  Term.(
    const mk $ trace_out $ events_out $ metrics_out $ metrics_prom $ profile
    $ sample_arg $ sample_instr_arg $ trace_cap_arg)

(* serve flags *)

let serve_shards =
  Arg.(value & opt int 4 & info [ "shards" ] ~docv:"N"
         ~doc:"Fleet size: shard workers, each a machine on its own \
               domain.")

let serve_requests =
  Arg.(value & opt int 200 & info [ "requests" ] ~docv:"M"
         ~doc:"Requests to generate.")

let serve_seed =
  Arg.(value & opt int 0 & info [ "seed" ] ~docv:"S"
         ~doc:"Workload seed; the whole run is a deterministic function \
               of (mix, seed, requests) and the fleet flags.")

let serve_mix =
  Arg.(value & opt string "standard" & info [ "mix" ] ~docv:"NAME"
         ~doc:"Request mix: standard, crossing or uniform.")

let serve_backend =
  Arg.(value & opt (some string) None
       & info [ "b"; "backend" ] ~docv:"BACKEND"
         ~doc:"Force every shard onto one protection backend — $(b,hw), \
               $(b,645) or $(b,cap) — overriding each catalog class's \
               own mode.  Unset, classes keep their modes.  An unknown \
               name is a usage error (exit 2).")

let serve_queue_cap =
  Arg.(value & opt int 64 & info [ "queue-cap" ] ~docv:"N"
         ~doc:"Per-shard queue bound per dispatch window; requests that \
               find every live queue full are shed and counted.")

let serve_batch_window =
  Arg.(value & opt int 4096 & info [ "batch-window" ] ~docv:"CYCLES"
         ~doc:"Virtual cycles per dispatch window (arrival batching).")

let serve_image_cap =
  Arg.(value & opt int 8 & info [ "image-cap" ] ~docv:"N"
         ~doc:"Boot-image LRU capacity per shard; 0 disables the cache \
               (every request cold-boots).")

let serve_replicas =
  Arg.(value & opt int 16 & info [ "replicas" ] ~docv:"N"
         ~doc:"Virtual points per shard on the consistent-hash ring.")

let serve_imbalance =
  Arg.(value & opt int 4 & info [ "imbalance" ] ~docv:"N"
         ~doc:"Least-loaded override threshold: leave a request on its \
               hash-preferred shard unless that queue exceeds the \
               shortest live queue by more than N.")

let serve_snapshot =
  Arg.(value & opt (some string) None & info [ "snapshot" ] ~docv:"BASE"
         ~doc:"Warm-boot the fleet from BASE.PROGRAM.ITERATIONS.snap \
               images when present (restored with full validation), and \
               write the run's boot images back to the same files.")

let serve_report_json =
  Arg.(value & opt (some string) None & info [ "report-json" ] ~docv:"FILE"
         ~doc:"Write the aggregated fleet report as JSON: config, \
               fleet-wide counters/latency/ring attribution, dispatch \
               statistics and per-shard summaries.  Byte-deterministic.")

let serve_watchdog =
  Arg.(value & opt (some int) None & info [ "watchdog" ] ~docv:"N"
         ~doc:"Per-request watchdog: quarantine a shard whose request \
               retires N instructions without a fault, ring crossing or \
               channel activity, redistributing its queue.")

let serve_pool =
  Arg.(value & opt (some int) None & info [ "pool" ] ~docv:"N"
         ~doc:"Worker domains in the persistent execution pool; defaults \
               to min(shards, host cores).  Affects host wall-clock \
               only — the fleet report is identical for every pool \
               size.")

let serve_steal =
  Arg.(value & opt string "on" & info [ "steal" ] ~docv:"on|off"
         ~doc:"Work stealing: let an idle pool worker take requests \
               from the tail of a sibling's deque.  Affects host \
               wall-clock only — the fleet report is identical either \
               way.")

let serve_trace_out =
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE"
         ~doc:"Trace every request and write the merged fleet Chrome \
               trace: one Chrome process per request (pid = request \
               id), rings as threads, 1us = 1 modeled cycle.  \
               Byte-deterministic for a given (mix, seed, requests, \
               --sample).")

let serve_metrics_out =
  Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE"
         ~doc:"Trace every request and write the fleet-wide counter sum \
               as a JSON metrics snapshot (the single-run format, so \
               the same scrapers apply).")

let serve_trace_cap =
  Arg.(value & opt int Serve.Shard.default_trace_capacity
       & info [ "trace-cap" ] ~docv:"N"
         ~doc:"Per-request event ring-buffer capacity; when full, the \
               oldest events are overwritten and counted as dropped.")

let serve_migrate =
  Arg.(value & opt (some string) None
       & info [ "migrate" ] ~docv:"WINDOW:FROM:TO"
         ~doc:"Live shard migration: at dispatch window WINDOW drain \
               shard FROM — its queued requests are re-dispatched in \
               arrival order, never dropped — retire it from the \
               rotation, and route its service classes to shard TO.  \
               After the campaign drains, the source worker's cached \
               boot images move to the target through the \
               incremental-snapshot handoff.  Outcomes are \
               placement-independent, so the report's fleet section is \
               byte-identical with or without the migration (as long \
               as nothing is shed).")

let serve_rolling_restart =
  Arg.(value & opt (some int) None
       & info [ "rolling-restart" ] ~docv:"N"
         ~doc:"Rolling restarts under load: every N dispatch windows \
               take the next shard (in id order) down for exactly one \
               window.  The ring routes around it, nothing queues on \
               it — zero dropped requests — and it returns with a \
               cold boot-image cache.")

let serve_autoscale =
  Arg.(value & flag
       & info [ "autoscale" ]
         ~doc:"Queue-depth-driven autoscaling: start routing on one \
               active shard and grow/shrink the active set window by \
               window from routed queue depth, with $(b,--shards) as \
               the ceiling.  Purely modeled — placement stays a \
               deterministic function of the workload and flags.")

let serve_cmd =
  let doc = "run a sharded serving fleet over the ring machines" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Generates a seeded, deterministic request stream over the \
         built-in program catalog (ring crossings under both \
         implementations, same-ring gated calls, outward calls, \
         argument passing, demand paging), routes it over $(b,--shards) \
         worker machines — consistent hashing on the service class with \
         a least-loaded override — and executes the stream on a \
         persistent pool of $(b,--pool) OCaml domains with work \
         stealing ($(b,--steal)).  Workers warm-boot each request from \
         a cached checkpoint image, so steady-state serving never \
         re-assembles a program.  Cross-shard counters, latency \
         histograms and ring profiles are merged into one fleet report \
         whose fleet section is independent of the shard count, pool \
         size and steal setting (see docs/SCALING.md).";
      `S Manpage.s_exit_status;
      `P
        "$(tname) exits 0 when every request was served and exited \
         cleanly; 1 when the fleet ran degraded (a request failed, was \
         shed by backpressure, or a shard was quarantined); and 2 on \
         usage, injection-plan or snapshot errors.";
    ]
  in
  Cmd.v (Cmd.info "serve" ~doc ~man)
    Term.(
      const run_serve $ serve_shards $ serve_requests $ serve_seed
      $ serve_mix $ serve_backend $ serve_queue_cap $ serve_batch_window
      $ serve_image_cap
      $ serve_replicas $ serve_imbalance $ serve_pool $ serve_steal
      $ serve_snapshot $ inject $ serve_watchdog $ serve_report_json
      $ serve_trace_out $ serve_metrics_out $ sample_arg $ sample_instr_arg
      $ serve_trace_cap $ serve_migrate $ serve_rolling_restart
      $ serve_autoscale)

(* {2 The arena subcommand} *)

let run_arena tenants arena_seed profile backend_name quota_cycles quota_mem
    quota_faults quota_io shards inject report_json =
  (* Every flag validated up front: a nonsensical value is a usage
     error (exit 2, message naming the flag), never a deep failure. *)
  let mode = Option.map resolve_backend backend_name in
  if tenants < 1 then usage_error "--tenants must be at least 1";
  if arena_seed < 0 then usage_error "--arena-seed must be nonnegative";
  if quota_cycles < 1 then usage_error "--quota-cycles must be positive";
  if quota_mem < 1 then usage_error "--quota-mem must be positive";
  if quota_faults < 0 then usage_error "--quota-faults must be nonnegative";
  if quota_io < 0 then usage_error "--quota-io must be nonnegative";
  if shards < 1 then usage_error "--shards must be at least 1";
  (match Serve.Tenants.kinds_of_profile profile with
  | Ok _ -> ()
  | Error e -> usage_error ("--profile: " ^ e));
  let plan = Option.map resolve_plan inject in
  let quota =
    {
      Os.Arena.cycles = quota_cycles;
      mem = quota_mem;
      faults = quota_faults;
      io = quota_io;
    }
  in
  let population =
    Serve.Tenants.generate ~profile ~seed:arena_seed ~tenants ()
  in
  let report =
    Serve.Tenants.run_sharded ?mode ?inject:plan ~quota ~shards
      ~seed:arena_seed population
  in
  Os.Arena.print_table report;
  Format.printf "@.%a@." Os.Arena.pp_report report;
  (match report_json with
  | Some file -> write_file file (Os.Arena.report_json report)
  | None -> ());
  if report.Os.Arena.violations <> [] then exit 1

let arena_tenants =
  Arg.(value & opt int 64 & info [ "tenants" ] ~docv:"N"
         ~doc:"Number of tenant programs in the campaign.")

let arena_seed =
  Arg.(value & opt int 1 & info [ "arena-seed" ] ~docv:"SEED"
         ~doc:"Population seed: the tenant kinds, their parameters and \
               therefore the whole billing report are a pure function \
               of (profile, seed, tenants).")

let arena_profile =
  Arg.(value & opt string "standard" & info [ "profile" ] ~docv:"NAME"
         ~doc:"Population profile: $(b,standard) (mostly honest, with \
               gate squeezers, ring maximizers, stack-bracket forgers, \
               cache probes, quota spinners and memory hogs) or \
               $(b,cooperative) (honest kinds only).")

let arena_backend =
  Arg.(value & opt (some string) None
       & info [ "b"; "backend" ] ~docv:"BACKEND"
         ~doc:"Protection backend hosting the tenants — $(b,hw), \
               $(b,645) or $(b,cap).  Unset, the arena's default \
               (hardware rings) applies.  An unknown name is a usage \
               error (exit 2).")

let arena_quota_cycles =
  Arg.(value & opt int Os.Arena.default_quota.Os.Arena.cycles
       & info [ "quota-cycles" ] ~docv:"N"
         ~doc:"Per-tenant modeled-cycle allowance; a tenant billed this \
               many cycles is quarantined mid-slice, to the \
               instruction.")

let arena_quota_mem =
  Arg.(value & opt int Os.Arena.default_quota.Os.Arena.mem
       & info [ "quota-mem" ] ~docv:"WORDS"
         ~doc:"Per-tenant virtual-memory allowance in words, checked at \
               admission and after every slice.")

let arena_quota_faults =
  Arg.(value & opt int Os.Arena.default_quota.Os.Arena.faults
       & info [ "quota-faults" ] ~docv:"N"
         ~doc:"Per-tenant fault allowance (access violations, page \
               faults, injected-fault recoveries).")

let arena_quota_io =
  Arg.(value & opt int Os.Arena.default_quota.Os.Arena.io
       & info [ "quota-io" ] ~docv:"N"
         ~doc:"Per-tenant channel-operation allowance (SIOC/SIOT \
               connects).")

let arena_shards =
  Arg.(value & opt int 1 & info [ "shards" ] ~docv:"N"
         ~doc:"Domains to spread the campaign's waves over.  Affects \
               host wall-clock only: the report is byte-identical for \
               every shard count.")

let arena_report_json =
  Arg.(value & opt (some string) None & info [ "report-json" ] ~docv:"FILE"
         ~doc:"Write the campaign report as JSON: parameters, verdict \
               counts, exit histogram, auditor findings and the full \
               per-tenant billing array.  Byte-deterministic.")

let arena_cmd =
  let doc = "host untrusted tenant programs under quotas and audits" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Generates a seeded population of $(b,--tenants) guest \
         programs — honest computations and ring-crossing services \
         mixed with adversarial probes (gate squeezing, argument-chain \
         ring maximization, stack-bracket forgery, self-modifying-code \
         cache probes, quota-exhaustion spinners, admission-time \
         memory hogs) — and runs them in outer rings of simulated \
         machines, eight tenants per machine, optionally spread over \
         $(b,--shards) domains.  Every cycle, fault and channel \
         operation is billed to the tenant that caused it; a quota \
         breach quarantines that tenant alone while its co-tenants \
         run on.  After every quarantine and at every wave end the \
         SDW auditor and the cross-tenant region auditor must find \
         the protection state intact, and with $(b,--inject) the same \
         audit runs after every fault-recovery decision.";
      `S Manpage.s_exit_status;
      `P
        "$(tname) exits 0 when the campaign ran and the auditors \
         found zero violations (quarantines are expected, not \
         errors); 1 when any audit failed; and 2 on usage or \
         injection-plan errors.";
    ]
  in
  Cmd.v (Cmd.info "arena" ~doc ~man)
    Term.(
      const run_arena $ arena_tenants $ arena_seed $ arena_profile
      $ arena_backend $ arena_quota_cycles $ arena_quota_mem
      $ arena_quota_faults $ arena_quota_io $ arena_shards $ inject
      $ arena_report_json)

let run_term =
  Term.(
    const run_program $ file $ backend $ start $ ring $ trace $ listing
    $ dump $ show_map $ typed $ budget $ inject $ campaigns
    $ checkpoint_every $ checkpoint_to $ restore_from $ kill_after
    $ watchdog $ obs)

let ringsim_doc = "simulate the Schroeder-Saltzer protection-ring processor"

let ringsim_man =
  [
    `S Manpage.s_description;
    `P
      "Invoked with a program $(i,FILE), $(tname) assembles and runs \
       it under either ring implementation (single- or multi-process, \
       with optional fault injection, checkpoint/restore and \
       observability exports); $(b,--campaigns) runs \
       security-under-fault campaigns instead.  The $(b,serve) \
       subcommand drives a sharded multi-domain serving fleet over \
       the same machines.";
    `S Manpage.s_exit_status;
    `P
      "$(tname) exits 0 on success; 1 when the run itself fails (a \
       protection-invariant violation under $(b,--campaigns), or a \
       resumed run whose device output diverges from the write-ahead \
       journal); and 2 on usage, file, injection-plan or snapshot \
       errors (unreadable, truncated, corrupt, version-mismatched or \
       audit-rejected images included).";
  ]

let group_cmd =
  Cmd.group ~default:run_term
    (Cmd.info "ringsim" ~doc:ringsim_doc ~man:ringsim_man)
    [ serve_cmd; arena_cmd ]

let legacy_cmd =
  Cmd.v (Cmd.info "ringsim" ~doc:ringsim_doc ~man:ringsim_man) run_term

(* [Cmd.group] refuses positional arguments that are not command
   names, which would reject the original [ringsim FILE] form.
   Dispatch by hand: the group takes the subcommand, bare
   --help/--version and the no-argument case (so the top-level help
   page lists COMMANDS); everything else is the classic
   single-command CLI, positionals and all. *)
let () =
  let starts_with prefix s =
    String.length s >= String.length prefix
    && String.sub s 0 (String.length prefix) = prefix
  in
  let grouped =
    Array.length Sys.argv <= 1
    ||
    match Sys.argv.(1) with
    | "serve" | "arena" | "--version" -> true
    | s -> starts_with "--help" s
  in
  exit (Cmd.eval (if grouped then group_cmd else legacy_cmd))
