(* jsoncheck: validate that each argument file parses as JSON.

   Files ending in .jsonl are validated line by line (blank lines
   allowed); anything else must be a single JSON document.  Exits 1 on
   the first malformed file, printing where it failed.  Used by `make
   trace-smoke` to check ringsim's exporter output without external
   tooling. *)

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let has_suffix ~suffix s =
  let ls = String.length suffix and l = String.length s in
  l >= ls && String.sub s (l - ls) ls = suffix

let check path =
  let text = read_file path in
  if has_suffix ~suffix:".jsonl" path then
    String.split_on_char '\n' text
    |> List.mapi (fun i line -> (i + 1, line))
    |> List.fold_left
         (fun acc (lineno, line) ->
           match acc with
           | Error _ -> acc
           | Ok () ->
               if String.trim line = "" then Ok ()
               else (
                 match Trace.Json.parse line with
                 | Ok _ -> Ok ()
                 | Error e ->
                     Error (Printf.sprintf "line %d: %s" lineno e)))
         (Ok ())
  else
    match Trace.Json.parse text with
    | Ok _ -> Ok ()
    | Error e -> Error e

let () =
  let files = List.tl (Array.to_list Sys.argv) in
  if files = [] then begin
    prerr_endline "usage: jsoncheck FILE...";
    exit 2
  end;
  let failed =
    List.fold_left
      (fun failed path ->
        match check path with
        | Ok () ->
            Printf.printf "%s: ok\n" path;
            failed
        | Error e ->
            Printf.eprintf "%s: %s\n" path e;
            true
        | exception Sys_error e ->
            Printf.eprintf "%s\n" e;
            true)
      false files
  in
  exit (if failed then 1 else 0)
