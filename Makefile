# Convenience targets; everything is plain dune underneath.

.PHONY: all test bench examples doc clean

all:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

examples:
	@for e in quickstart protected_subsystem layered_supervisor debug_ring \
	          multiprogramming dynamic_linking grading typewriter \
	          argument_chain bare_metal; do \
	  echo "==== $$e ===="; dune exec examples/$$e.exe; echo; done

clean:
	dune clean
