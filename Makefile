# Convenience targets; everything is plain dune underneath.

.PHONY: all test bench bench-smoke examples doc clean

all:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

# Fast sanity pass: fig1 and c1 plus the throughput experiment, with a
# determinism check — the modeled-cycle output must be byte-identical
# across runs.  The host-time tables (bechamel ns/run, wall-clock) are
# stripped first: they measure the host and are expected to wobble.
BENCH_NOISE_FILTER = sed -e '/micro-benchmark/,/^$$/d' \
                         -e '/host wall-clock/,/^$$/d' \
                         -e '/host time/,/^$$/d'

bench-smoke:
	dune build bench/main.exe
	_build/default/bench/main.exe fig1 c1 | $(BENCH_NOISE_FILTER) > /tmp/bench_smoke_a.out
	_build/default/bench/main.exe fig1 c1 | $(BENCH_NOISE_FILTER) > /tmp/bench_smoke_b.out
	@diff /tmp/bench_smoke_a.out /tmp/bench_smoke_b.out \
	  && echo "bench-smoke: modeled-cycle output deterministic" \
	  || { echo "bench-smoke: modeled-cycle output DIFFERS between runs"; exit 1; }
	_build/default/bench/main.exe throughput

examples:
	@for e in quickstart protected_subsystem layered_supervisor debug_ring \
	          multiprogramming dynamic_linking grading typewriter \
	          argument_chain bare_metal; do \
	  echo "==== $$e ===="; dune exec examples/$$e.exe; echo; done

clean:
	dune clean
