# Convenience targets; everything is plain dune underneath.

.PHONY: all test bench bench-smoke trace-smoke chaos-smoke snapshot-smoke arena-smoke serve-smoke serve-stress migrate-smoke cap-smoke examples doc clean

all:
	dune build @all

# The full gate: unit/property tests, then the two smoke passes that
# check what the unit tests cannot — byte-determinism of the modeled
# benches and of the trace exporters.
test:
	dune runtest
	$(MAKE) trace-smoke
	$(MAKE) chaos-smoke
	$(MAKE) snapshot-smoke
	$(MAKE) arena-smoke
	$(MAKE) serve-smoke
	$(MAKE) serve-stress
	$(MAKE) migrate-smoke
	$(MAKE) bench-smoke
	$(MAKE) cap-smoke

bench:
	dune exec bench/main.exe

# Fast sanity pass: fig1 and c1 plus the throughput experiment, with a
# determinism check — the modeled-cycle output must be byte-identical
# across runs.  The host-time tables (bechamel ns/run, wall-clock) are
# stripped first: they measure the host and are expected to wobble.
BENCH_NOISE_FILTER = sed -e '/micro-benchmark/,/^$$/d' \
                         -e '/host wall-clock/,/^$$/d' \
                         -e '/host time/,/^$$/d'

bench-smoke:
	dune build bench/main.exe
	_build/default/bench/main.exe fig1 c1 | $(BENCH_NOISE_FILTER) > /tmp/bench_smoke_a.out
	_build/default/bench/main.exe fig1 c1 | $(BENCH_NOISE_FILTER) > /tmp/bench_smoke_b.out
	@diff /tmp/bench_smoke_a.out /tmp/bench_smoke_b.out \
	  && echo "bench-smoke: modeled-cycle output deterministic" \
	  || { echo "bench-smoke: modeled-cycle output DIFFERS between runs"; exit 1; }
	_build/default/bench/main.exe throughput

# Run the demo program with every exporter on, twice: each output must
# be well-formed JSON and byte-identical across runs (the exporters
# read modeled state only, never the host clock).
trace-smoke:
	dune build bin/ringsim.exe bin/jsoncheck.exe
	@for run in a b; do \
	  _build/default/bin/ringsim.exe examples/programs/demo.rng \
	    --trace-out /tmp/trace_smoke_$$run.json \
	    --events-out /tmp/trace_smoke_$$run.jsonl \
	    --metrics-out /tmp/trace_smoke_$$run.metrics.json \
	    --metrics-prom /tmp/trace_smoke_$$run.prom \
	    --profile > /tmp/trace_smoke_$$run.out || exit 1; \
	done
	_build/default/bin/jsoncheck.exe /tmp/trace_smoke_a.json \
	  /tmp/trace_smoke_a.jsonl /tmp/trace_smoke_a.metrics.json
	@for f in json jsonl metrics.json prom out; do \
	  diff /tmp/trace_smoke_a.$$f /tmp/trace_smoke_b.$$f \
	    || { echo "trace-smoke: $$f output DIFFERS between runs"; exit 1; }; \
	done
	@echo "trace-smoke: exporter output well-formed and deterministic"
	@# A fully-traced fleet at --sample 8, run twice: the merged Chrome
	@# trace, metrics and report must be byte-identical across runs, and
	@# the trace must not depend on the shard count — a request's trace
	@# is a function of the request, not of where it ran.
	@for run in a b; do \
	  _build/default/bin/ringsim.exe serve --shards 4 --requests 100 --seed 7 \
	    --queue-cap 256 --sample 8 \
	    --trace-out /tmp/trace_smoke_serve_$$run.json \
	    --metrics-out /tmp/trace_smoke_serve_$$run.metrics.json \
	    --report-json /tmp/trace_smoke_serve_$$run.report.json \
	    > /tmp/trace_smoke_serve_$$run.out \
	    || { echo "trace-smoke: traced serve run failed"; exit 1; }; \
	done
	_build/default/bin/jsoncheck.exe /tmp/trace_smoke_serve_a.json \
	  /tmp/trace_smoke_serve_a.metrics.json /tmp/trace_smoke_serve_a.report.json
	@for f in json metrics.json report.json out; do \
	  diff /tmp/trace_smoke_serve_a.$$f /tmp/trace_smoke_serve_b.$$f \
	    || { echo "trace-smoke: traced serve $$f DIFFERS between runs"; exit 1; }; \
	done
	@_build/default/bin/ringsim.exe serve --shards 2 --requests 100 --seed 7 \
	  --queue-cap 256 --sample 8 \
	  --trace-out /tmp/trace_smoke_serve_s2.json \
	  > /dev/null \
	  || { echo "trace-smoke: 2-shard traced serve run failed"; exit 1; }
	@diff /tmp/trace_smoke_serve_a.json /tmp/trace_smoke_serve_s2.json \
	  || { echo "trace-smoke: merged trace depends on the shard count"; exit 1; }
	@echo "trace-smoke: traced fleet byte-deterministic and placement-invariant"

# Security-under-fault campaigns on three fixed seeds, each run twice:
# the reports must show zero protection violations (ringsim exits
# non-zero otherwise), be well-formed JSON, and be byte-identical
# across runs — fault injection is deterministic replay, not noise.
chaos-smoke:
	dune build bin/ringsim.exe bin/jsoncheck.exe
	@for seed in 1 2 3; do \
	  for run in a b; do \
	    _build/default/bin/ringsim.exe --campaigns 5 --inject $$seed \
	      --metrics-out /tmp/chaos_smoke_$${seed}_$$run.json \
	      > /tmp/chaos_smoke_$${seed}_$$run.out \
	      || { echo "chaos-smoke: seed $$seed reported violations"; exit 1; }; \
	  done; \
	  _build/default/bin/jsoncheck.exe /tmp/chaos_smoke_$${seed}_a.json || exit 1; \
	  for f in json out; do \
	    diff /tmp/chaos_smoke_$${seed}_a.$$f /tmp/chaos_smoke_$${seed}_b.$$f \
	      || { echo "chaos-smoke: seed $$seed output DIFFERS between runs"; exit 1; }; \
	  done; \
	done
	@echo "chaos-smoke: campaigns deterministic, reports valid, invariants intact"

# Kill-and-resume equivalence at the CLI: run the journalled workload
# uninterrupted, then kill it at three cycle points and resume each
# from its last checkpoint.  The resumed stdout, device journal and
# metrics must be byte-identical to the uninterrupted run's (the two
# session-local counters — restores, journal_replays_skipped — are
# masked: a resumed run legitimately owns those).  All runs must pass
# the same observability flags; the image carries the exporters' state.
SNAPSHOT_LOCAL_FILTER = sed -E 's/"(restores|journal_replays_skipped)": [0-9]+/"\1": X/'

snapshot-smoke:
	dune build bin/ringsim.exe
	@rm -rf /tmp/snapshot_smoke && mkdir -p /tmp/snapshot_smoke
	_build/default/bin/ringsim.exe examples/programs/journal.rng \
	  --checkpoint-every 100 --checkpoint-to /tmp/snapshot_smoke/base.snap \
	  --metrics-out /tmp/snapshot_smoke/base.metrics \
	  > /tmp/snapshot_smoke/base.out
	@for k in 150 400 900; do \
	  _build/default/bin/ringsim.exe examples/programs/journal.rng \
	    --checkpoint-every 100 --checkpoint-to /tmp/snapshot_smoke/k$$k.snap \
	    --metrics-out /tmp/snapshot_smoke/dead$$k.metrics --kill-after $$k \
	    > /tmp/snapshot_smoke/dead$$k.out 2>/dev/null || exit 1; \
	  _build/default/bin/ringsim.exe examples/programs/journal.rng \
	    --restore /tmp/snapshot_smoke/k$$k.snap \
	    --checkpoint-every 100 --checkpoint-to /tmp/snapshot_smoke/k$$k.snap \
	    --metrics-out /tmp/snapshot_smoke/res$$k.metrics \
	    > /tmp/snapshot_smoke/res$$k.out || exit 1; \
	  diff /tmp/snapshot_smoke/base.out /tmp/snapshot_smoke/res$$k.out \
	    || { echo "snapshot-smoke: kill at $$k: stdout DIFFERS after resume"; exit 1; }; \
	  cmp /tmp/snapshot_smoke/base.snap.journal /tmp/snapshot_smoke/k$$k.snap.journal \
	    || { echo "snapshot-smoke: kill at $$k: device journal DIFFERS after resume"; exit 1; }; \
	  $(SNAPSHOT_LOCAL_FILTER) /tmp/snapshot_smoke/base.metrics \
	    > /tmp/snapshot_smoke/base.metrics.masked; \
	  $(SNAPSHOT_LOCAL_FILTER) /tmp/snapshot_smoke/res$$k.metrics \
	    > /tmp/snapshot_smoke/res$$k.metrics.masked; \
	  diff /tmp/snapshot_smoke/base.metrics.masked /tmp/snapshot_smoke/res$$k.metrics.masked \
	    || { echo "snapshot-smoke: kill at $$k: metrics DIFFER after resume"; exit 1; }; \
	done
	@_build/default/bin/ringsim.exe examples/programs/journal.rng --inject 7 \
	  --checkpoint-every 100 --checkpoint-to /tmp/snapshot_smoke/ibase.snap \
	  --metrics-out /tmp/snapshot_smoke/ibase.metrics \
	  > /tmp/snapshot_smoke/ibase.out
	@_build/default/bin/ringsim.exe examples/programs/journal.rng --inject 7 \
	  --checkpoint-every 100 --checkpoint-to /tmp/snapshot_smoke/ik.snap \
	  --metrics-out /tmp/snapshot_smoke/idead.metrics --kill-after 400 \
	  > /tmp/snapshot_smoke/idead.out 2>/dev/null || exit 1
	@_build/default/bin/ringsim.exe examples/programs/journal.rng --inject 7 \
	  --restore /tmp/snapshot_smoke/ik.snap \
	  --checkpoint-every 100 --checkpoint-to /tmp/snapshot_smoke/ik.snap \
	  --metrics-out /tmp/snapshot_smoke/ires.metrics \
	  > /tmp/snapshot_smoke/ires.out || exit 1
	@$(SNAPSHOT_LOCAL_FILTER) /tmp/snapshot_smoke/ibase.metrics \
	  > /tmp/snapshot_smoke/ibase.metrics.masked
	@$(SNAPSHOT_LOCAL_FILTER) /tmp/snapshot_smoke/ires.metrics \
	  > /tmp/snapshot_smoke/ires.metrics.masked
	@diff /tmp/snapshot_smoke/ibase.out /tmp/snapshot_smoke/ires.out \
	  && cmp /tmp/snapshot_smoke/ibase.snap.journal /tmp/snapshot_smoke/ik.snap.journal \
	  && diff /tmp/snapshot_smoke/ibase.metrics.masked /tmp/snapshot_smoke/ires.metrics.masked \
	  || { echo "snapshot-smoke: resume under injection DIFFERS"; exit 1; }
	@echo "snapshot-smoke: kill-and-resume byte-identical at 3 kill points (+injection)"
	@# Delta-chain GC: this cadence captures 12 deltas over the run, so
	@# the fold-every-8 GC fires once: BASE is rewritten as the flatten
	@# of the chain, the folded delta files deleted, and capture
	@# continues on the rebased chain (d0001 restarts).  Fewer than 8
	@# surviving delta files is therefore proof the fold happened.
	@# Kill-and-resume through the folded chain must stay byte-identical.
	@_build/default/bin/ringsim.exe examples/programs/journal.rng \
	  --checkpoint-every 100 --checkpoint-to /tmp/snapshot_smoke/gc.snap \
	  > /tmp/snapshot_smoke/gc.out
	@ls /tmp/snapshot_smoke/gc.snap.d* > /dev/null 2>&1 \
	  || { echo "snapshot-smoke: gc run left no delta files"; exit 1; }
	@test $$(ls /tmp/snapshot_smoke/gc.snap.d* | wc -l) -lt 8 \
	  || { echo "snapshot-smoke: gc never folded the chain"; exit 1; }
	@rm -f /tmp/snapshot_smoke/gck.snap*
	@_build/default/bin/ringsim.exe examples/programs/journal.rng \
	  --checkpoint-every 100 --checkpoint-to /tmp/snapshot_smoke/gck.snap \
	  --kill-after 420 > /tmp/snapshot_smoke/gcdead.out 2>/dev/null || exit 1
	@_build/default/bin/ringsim.exe examples/programs/journal.rng \
	  --restore /tmp/snapshot_smoke/gck.snap \
	  --checkpoint-every 100 --checkpoint-to /tmp/snapshot_smoke/gck.snap \
	  > /tmp/snapshot_smoke/gcres.out || exit 1
	@diff /tmp/snapshot_smoke/gc.out /tmp/snapshot_smoke/gcres.out \
	  || { echo "snapshot-smoke: resume through folded chain DIFFERS"; exit 1; }
	@# Mixing delta files from another chain must be refused up front
	@# (Stale_base/Broken_chain), exit 2, before any state is touched.
	@cp /tmp/snapshot_smoke/k400.snap /tmp/snapshot_smoke/mix.snap
	@cp /tmp/snapshot_smoke/ibase.snap.d0001 /tmp/snapshot_smoke/mix.snap.d0001
	@_build/default/bin/ringsim.exe examples/programs/journal.rng \
	  --restore /tmp/snapshot_smoke/mix.snap \
	  > /dev/null 2>/tmp/snapshot_smoke/mix.err; \
	  test $$? -eq 2 \
	  || { echo "snapshot-smoke: mixed-chain restore did not exit 2"; exit 1; }
	@grep -qE "stale base|chain" /tmp/snapshot_smoke/mix.err \
	  || { echo "snapshot-smoke: mixed-chain restore error unhelpful"; \
	       cat /tmp/snapshot_smoke/mix.err; exit 1; }
	@echo "snapshot-smoke: delta chains fold, resume and refuse mixed links on disk"

# Multi-tenant arena gate.  Two seeded campaigns, each run twice: the
# billing report (stdout and JSON) must be byte-identical across
# reruns and across shard counts, the JSON must be well-formed, and
# the standard adversarial mix must quarantine at least one tenant
# while still exiting 0 — quarantines are the arena working as
# designed; only a cross-tenant auditor violation is a failure.  A
# final sweep of 20 seeded campaigns is the standing zero-leak gate:
# every one must keep violations at zero (exit 0) and quarantine at
# least one adversary.
arena-smoke:
	dune build bin/ringsim.exe bin/jsoncheck.exe
	@rm -rf /tmp/arena_smoke && mkdir -p /tmp/arena_smoke
	@for seed in 5 42; do \
	  for run in a b; do \
	    _build/default/bin/ringsim.exe arena --tenants 96 --arena-seed $$seed \
	      --report-json /tmp/arena_smoke/s$${seed}_$$run.json \
	      > /tmp/arena_smoke/s$${seed}_$$run.out \
	      || { echo "arena-smoke: seed $$seed reported violations"; exit 1; }; \
	  done; \
	  _build/default/bin/jsoncheck.exe /tmp/arena_smoke/s$${seed}_a.json || exit 1; \
	  for f in json out; do \
	    diff /tmp/arena_smoke/s$${seed}_a.$$f /tmp/arena_smoke/s$${seed}_b.$$f \
	      || { echo "arena-smoke: seed $$seed output DIFFERS between runs"; exit 1; }; \
	  done; \
	  grep -Eq ", [1-9][0-9]* quarantined" /tmp/arena_smoke/s$${seed}_a.out \
	    || { echo "arena-smoke: seed $$seed quarantined no tenant"; exit 1; }; \
	done
	@_build/default/bin/ringsim.exe arena --tenants 96 --arena-seed 42 --shards 4 \
	  --report-json /tmp/arena_smoke/s42_sh4.json > /tmp/arena_smoke/s42_sh4.out \
	  || { echo "arena-smoke: 4-shard campaign reported violations"; exit 1; }
	@for f in json out; do \
	  diff /tmp/arena_smoke/s42_a.$$f /tmp/arena_smoke/s42_sh4.$$f \
	    || { echo "arena-smoke: report depends on the shard count"; exit 1; }; \
	done
	@for seed in $$(seq 1 20); do \
	  _build/default/bin/ringsim.exe arena --tenants 48 --arena-seed $$seed \
	    > /tmp/arena_smoke/gate$$seed.out \
	    || { echo "arena-smoke: campaign seed $$seed reported violations"; exit 1; }; \
	  grep -Eq ", [1-9][0-9]* quarantined" /tmp/arena_smoke/gate$$seed.out \
	    || { echo "arena-smoke: campaign seed $$seed quarantined no tenant"; exit 1; }; \
	done
	@echo "arena-smoke: billing deterministic and shard-independent, adversaries quarantined, 22 campaigns leak-free"

# Serving-fleet determinism, two ways.  First, the same 4-shard fleet
# run twice must produce byte-identical stdout and JSON report — the
# dispatcher's Domain interleaving must never leak into the output.
# Second, the report's "fleet" section (per-request counters, latency
# distribution, ring attribution) must be byte-identical between a
# 2-shard and a 4-shard fleet on the same seed: an outcome may not
# depend on which shard served it.  queue_cap is raised so nothing is
# shed — a shed request would legitimately change the outcome set.
serve-smoke:
	dune build bin/ringsim.exe bin/jsoncheck.exe
	@rm -rf /tmp/serve_smoke && mkdir -p /tmp/serve_smoke
	@for run in a b; do \
	  _build/default/bin/ringsim.exe serve --shards 4 --requests 200 --seed 7 \
	    --queue-cap 256 --report-json /tmp/serve_smoke/s4_$$run.json \
	    > /tmp/serve_smoke/s4_$$run.out \
	    || { echo "serve-smoke: 4-shard fleet run failed"; exit 1; }; \
	done
	_build/default/bin/jsoncheck.exe /tmp/serve_smoke/s4_a.json
	@for f in json out; do \
	  diff /tmp/serve_smoke/s4_a.$$f /tmp/serve_smoke/s4_b.$$f \
	    || { echo "serve-smoke: $$f output DIFFERS between runs"; exit 1; }; \
	done
	@_build/default/bin/ringsim.exe serve --shards 2 --requests 200 --seed 7 \
	  --queue-cap 256 --report-json /tmp/serve_smoke/s2.json \
	  > /tmp/serve_smoke/s2.out \
	  || { echo "serve-smoke: 2-shard fleet run failed"; exit 1; }
	@sed -n '/"fleet"/,/"dispatch"/p' /tmp/serve_smoke/s2.json \
	  > /tmp/serve_smoke/fleet2
	@sed -n '/"fleet"/,/"dispatch"/p' /tmp/serve_smoke/s4_a.json \
	  > /tmp/serve_smoke/fleet4
	@diff /tmp/serve_smoke/fleet2 /tmp/serve_smoke/fleet4 \
	  || { echo "serve-smoke: fleet section depends on the shard count"; exit 1; }
	@echo "serve-smoke: fleet reports deterministic and shard-count invariant"

# Execution-pool determinism under stress: a high-shard fleet on an
# explicit multi-worker pool, where every run's report body (fleet,
# dispatch and shards sections — everything after the config echo) and
# stdout must be byte-identical (a) run-to-run with stealing on, (b)
# between stealing on and off, and (c) between a 4-worker and a
# 1-worker pool.  This is the tentpole contract: work stealing and
# host scheduling may change wall-clock only, never a byte of the
# report.
serve-stress:
	dune build bin/ringsim.exe bin/jsoncheck.exe
	@rm -rf /tmp/serve_stress && mkdir -p /tmp/serve_stress
	@for run in a b; do \
	  _build/default/bin/ringsim.exe serve --shards 8 --requests 500 --seed 11 \
	    --queue-cap 256 --pool 4 --steal on \
	    --report-json /tmp/serve_stress/on_$$run.json \
	    > /tmp/serve_stress/on_$$run.out \
	    || { echo "serve-stress: steal-on fleet run failed"; exit 1; }; \
	done
	_build/default/bin/jsoncheck.exe /tmp/serve_stress/on_a.json
	@for f in json out; do \
	  diff /tmp/serve_stress/on_a.$$f /tmp/serve_stress/on_b.$$f \
	    || { echo "serve-stress: $$f output DIFFERS between runs"; exit 1; }; \
	done
	@_build/default/bin/ringsim.exe serve --shards 8 --requests 500 --seed 11 \
	  --queue-cap 256 --pool 4 --steal off \
	  --report-json /tmp/serve_stress/off.json \
	  > /tmp/serve_stress/off.out \
	  || { echo "serve-stress: steal-off fleet run failed"; exit 1; }
	@_build/default/bin/ringsim.exe serve --shards 8 --requests 500 --seed 11 \
	  --queue-cap 256 --pool 1 --steal on \
	  --report-json /tmp/serve_stress/p1.json \
	  > /tmp/serve_stress/p1.out \
	  || { echo "serve-stress: 1-worker fleet run failed"; exit 1; }
	@for v in on_a off p1; do \
	  sed -n '/"fleet"/,$$p' /tmp/serve_stress/$$v.json \
	    > /tmp/serve_stress/$$v.body; \
	done
	@diff /tmp/serve_stress/on_a.body /tmp/serve_stress/off.body \
	  || { echo "serve-stress: report depends on work stealing"; exit 1; }
	@diff /tmp/serve_stress/on_a.out /tmp/serve_stress/off.out \
	  || { echo "serve-stress: stdout depends on work stealing"; exit 1; }
	@diff /tmp/serve_stress/on_a.body /tmp/serve_stress/p1.body \
	  || { echo "serve-stress: report depends on the pool size"; exit 1; }
	@diff /tmp/serve_stress/on_a.out /tmp/serve_stress/p1.out \
	  || { echo "serve-stress: stdout depends on the pool size"; exit 1; }
	@echo "serve-stress: report invariant under stealing, pool size and reruns"

# Elastic-fleet invariance: a live shard migration, rolling restarts
# and queue-depth autoscaling must each leave the report's fleet
# section byte-identical to the plain run — the drain moves (never
# drops) requests, a restarted shard only loses cache warmth, and the
# active-set size is routing detail.  ringsim exits non-zero when
# anything is shed or degraded, so exit 0 on every variant proves zero
# dropped requests.
migrate-smoke:
	dune build bin/ringsim.exe
	@rm -rf /tmp/migrate_smoke && mkdir -p /tmp/migrate_smoke
	@_build/default/bin/ringsim.exe serve --shards 4 --requests 200 --seed 7 \
	  --queue-cap 256 --pool 4 \
	  --report-json /tmp/migrate_smoke/plain.json \
	  > /tmp/migrate_smoke/plain.out \
	  || { echo "migrate-smoke: plain fleet run failed"; exit 1; }
	@_build/default/bin/ringsim.exe serve --shards 4 --requests 200 --seed 7 \
	  --queue-cap 256 --pool 4 --migrate 1:0:1 \
	  --report-json /tmp/migrate_smoke/migrate.json \
	  > /tmp/migrate_smoke/migrate.out \
	  || { echo "migrate-smoke: migration run dropped requests"; exit 1; }
	@_build/default/bin/ringsim.exe serve --shards 4 --requests 200 --seed 7 \
	  --queue-cap 256 --pool 4 --rolling-restart 2 \
	  --report-json /tmp/migrate_smoke/restart.json \
	  > /tmp/migrate_smoke/restart.out \
	  || { echo "migrate-smoke: rolling-restart run dropped requests"; exit 1; }
	@_build/default/bin/ringsim.exe serve --shards 4 --requests 200 --seed 7 \
	  --queue-cap 32 --pool 4 --autoscale \
	  --report-json /tmp/migrate_smoke/autoscale.json \
	  > /tmp/migrate_smoke/autoscale.out \
	  || { echo "migrate-smoke: autoscale run shed requests"; exit 1; }
	@grep -q '"migrated": [1-9]' /tmp/migrate_smoke/migrate.json \
	  || { echo "migrate-smoke: migration drained nothing"; exit 1; }
	@grep -q '"restarts": [1-9]' /tmp/migrate_smoke/restart.json \
	  || { echo "migrate-smoke: no restart cycles taken"; exit 1; }
	@for v in plain migrate restart autoscale; do \
	  sed -n '/"fleet"/,/"dispatch"/p' /tmp/migrate_smoke/$$v.json \
	    > /tmp/migrate_smoke/$$v.fleet; \
	done
	@for v in migrate restart autoscale; do \
	  diff /tmp/migrate_smoke/plain.fleet /tmp/migrate_smoke/$$v.fleet \
	    || { echo "migrate-smoke: $$v changed the fleet section"; exit 1; }; \
	done
	@echo "migrate-smoke: fleet section invariant under migration, restarts and autoscaling; zero dropped requests"

# Capability backend: a cap-mode run must be byte-deterministic, the
# whole example-program catalog must run under --backend cap, an
# unknown backend must be a usage error, a cap-mode fleet must be
# deterministic and shard-count invariant, and the bench's backends
# section must be well-formed.
cap-smoke:
	dune build bin/ringsim.exe bin/jsoncheck.exe
	@rm -rf /tmp/cap_smoke && mkdir -p /tmp/cap_smoke
	@for run in a b; do \
	  _build/default/bin/ringsim.exe examples/programs/demo.rng \
	    --backend cap > /tmp/cap_smoke/run_$$run.out \
	    || { echo "cap-smoke: cap-mode run failed"; exit 1; }; \
	done
	@diff /tmp/cap_smoke/run_a.out /tmp/cap_smoke/run_b.out \
	  || { echo "cap-smoke: cap-mode run DIFFERS between runs"; exit 1; }
	@for p in echo journal multiproc; do \
	  _build/default/bin/ringsim.exe examples/programs/$$p.rng --backend cap \
	    > /tmp/cap_smoke/$$p.out \
	    || { echo "cap-smoke: $$p.rng failed under --backend cap"; exit 1; }; \
	done
	@_build/default/bin/ringsim.exe examples/programs/audited.rng \
	  --backend cap --start reader > /tmp/cap_smoke/audited.out \
	  || { echo "cap-smoke: audited.rng failed under --backend cap"; exit 1; }
	@_build/default/bin/ringsim.exe examples/programs/demo.rng --backend bogus \
	  > /dev/null 2>&1; \
	  test $$? -eq 2 \
	  || { echo "cap-smoke: unknown backend did not exit 2"; exit 1; }
	@for run in a b; do \
	  _build/default/bin/ringsim.exe serve --shards 2 --requests 200 --seed 7 \
	    --queue-cap 256 --backend cap \
	    --report-json /tmp/cap_smoke/s2_$$run.json \
	    > /tmp/cap_smoke/s2_$$run.out \
	    || { echo "cap-smoke: cap-mode fleet run failed"; exit 1; }; \
	done
	_build/default/bin/jsoncheck.exe /tmp/cap_smoke/s2_a.json
	@for f in json out; do \
	  diff /tmp/cap_smoke/s2_a.$$f /tmp/cap_smoke/s2_b.$$f \
	    || { echo "cap-smoke: cap-mode fleet $$f DIFFERS between runs"; exit 1; }; \
	done
	@_build/default/bin/ringsim.exe serve --shards 4 --requests 200 --seed 7 \
	  --queue-cap 256 --backend cap --report-json /tmp/cap_smoke/s4.json \
	  > /tmp/cap_smoke/s4.out \
	  || { echo "cap-smoke: 4-shard cap fleet run failed"; exit 1; }
	@sed -n '/"fleet"/,/"dispatch"/p' /tmp/cap_smoke/s2_a.json \
	  > /tmp/cap_smoke/fleet2
	@sed -n '/"fleet"/,/"dispatch"/p' /tmp/cap_smoke/s4.json \
	  > /tmp/cap_smoke/fleet4
	@diff /tmp/cap_smoke/fleet2 /tmp/cap_smoke/fleet4 \
	  || { echo "cap-smoke: cap fleet section depends on the shard count"; exit 1; }
	_build/default/bin/jsoncheck.exe BENCH_throughput.json
	@grep -q '"backends"' BENCH_throughput.json \
	  || { echo "cap-smoke: bench backends section missing"; exit 1; }
	@echo "cap-smoke: cap-mode runs deterministic, fleet shard-invariant, catalog green, backends section valid"

examples:
	@for e in quickstart protected_subsystem layered_supervisor debug_ring \
	          multiprogramming dynamic_linking grading typewriter \
	          argument_chain bare_metal; do \
	  echo "==== $$e ===="; dune exec examples/$$e.exe; echo; done

clean:
	dune clean
